"""User-count estimation from a single flux observation.

The paper claims K "is not necessarily preknown": fit with a
conservatively large K and surplus users converge to ``s/r -> 0``.
This module packages that claim as an estimator: localize with
``max_users`` slots, then run the forward-selection activity test —
the number of surviving users is the estimate. The count bench
measures the confusion matrix over true K = 1..4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fingerprint.nls import NLSLocalizer, forward_select_active
from repro.traffic.measurement import FluxObservation
from repro.util.rng import RandomState, as_generator


@dataclass(frozen=True)
class UserCountEstimate:
    """Outcome of user-count estimation.

    Attributes
    ----------
    count:
        Estimated number of simultaneously active users.
    positions:
        ``(count, 2)`` positions of the surviving users.
    thetas:
        ``(count,)`` their fitted stretch factors.
    objective:
        Fit objective of the surviving composition.
    """

    count: int
    positions: np.ndarray
    thetas: np.ndarray
    objective: float


def estimate_user_count(
    localizer: NLSLocalizer,
    observation: FluxObservation,
    max_users: int = 6,
    candidate_count: int = 2000,
    restarts: int = 2,
    min_improvement: float = 0.15,
    merge_radius: Optional[float] = None,
    rng: RandomState = None,
) -> UserCountEstimate:
    """Estimate how many users are collecting, and where.

    Two mechanisms combine:

    1. *forward selection* — slots whose inclusion barely improves the
       fit did not collect (the paper's ``s/r -> 0``);
    2. *position clustering* — the flux model's residual bias lets
       several slots profitably crowd around ONE true user (each soaks
       up structured model error), so surviving slots within
       ``merge_radius`` of each other are merged into one user, their
       stretch factors summed.

    Parameters
    ----------
    max_users:
        Conservative upper bound on K (paper: "choose a K large
        enough").
    min_improvement:
        Forward-selection threshold: a user slot counts only if its
        inclusion improves the fit by at least this fraction.
    merge_radius:
        Cluster diameter for slot merging; defaults to 10% of the
        field diameter.
    """
    if max_users < 1:
        raise ConfigurationError(f"max_users must be >= 1, got {max_users}")
    gen = as_generator(rng)
    result = localizer.localize(
        observation,
        user_count=max_users,
        candidate_count=candidate_count,
        restarts=restarts,
        rng=gen,
    )
    objective = localizer.objective_for(observation)
    kernels = localizer.model.geometry_kernels(result.best.positions)
    mask, thetas, obj = forward_select_active(
        objective, kernels, min_improvement=min_improvement
    )
    active = np.flatnonzero(mask)
    if active.size == 0:
        # Degenerate (e.g. all-zero flux): nobody is collecting.
        return UserCountEstimate(
            count=0,
            positions=np.zeros((0, 2)),
            thetas=np.zeros(0),
            objective=float(obj),
        )

    positions = result.best.positions[active]
    weights = thetas[active]
    if merge_radius is None:
        merge_radius = 0.1 * localizer.field.diameter
    merged_pos, merged_theta = _merge_clusters(
        positions, weights, float(merge_radius)
    )
    return UserCountEstimate(
        count=int(merged_pos.shape[0]),
        positions=merged_pos,
        thetas=merged_theta,
        objective=float(obj),
    )


def _merge_clusters(
    positions: np.ndarray, thetas: np.ndarray, radius: float
):
    """Single-linkage clustering by union-find; theta-weighted centers."""
    n = positions.shape[0]
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(n):
        for j in range(i + 1, n):
            if np.linalg.norm(positions[i] - positions[j]) <= radius:
                parent[find(i)] = find(j)

    clusters: dict = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)

    merged_pos = []
    merged_theta = []
    for members in clusters.values():
        idx = np.asarray(members)
        w = np.maximum(thetas[idx], 1e-12)
        merged_pos.append((w[:, None] * positions[idx]).sum(axis=0) / w.sum())
        merged_theta.append(float(thetas[idx].sum()))
    return np.stack(merged_pos), np.asarray(merged_theta)
