"""Continuous (infinite-density) flux model — paper Formula 3.2.

For a sink in a field of infinite node density where each unit area
generates ``s`` units of data toward the sink, the flux density at a
point at distance ``d`` from the sink, with boundary distance ``l``
along the sink->point ray, is ``F = s (l^2 - d^2) / (2 d)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def continuous_flux(
    d: np.ndarray, l: np.ndarray, stretch: float = 1.0, d_floor: float = 1e-6
) -> np.ndarray:
    """Evaluate Formula 3.2, ``F = s (l^2 - d^2) / (2 d)``.

    Parameters
    ----------
    d:
        Distance(s) from the sink to the evaluation point(s).
    l:
        Boundary distance(s) along the sink->point ray; must satisfy
        ``l >= d`` for in-field points (violations are clamped to zero
        flux, matching the model's "no data beyond the boundary").
    stretch:
        Data generated per unit area, ``s``.
    d_floor:
        Lower clamp on ``d`` to avoid the singularity at the sink.
    """
    d = np.asarray(d, dtype=float)
    l = np.asarray(l, dtype=float)
    if d.shape != l.shape:
        raise ConfigurationError(f"d {d.shape} and l {l.shape} must have equal shape")
    if not np.isfinite(stretch) or stretch < 0:
        raise ConfigurationError(f"stretch must be finite and >= 0, got {stretch}")
    if d_floor <= 0:
        raise ConfigurationError(f"d_floor must be > 0, got {d_floor}")
    dd = np.maximum(d, d_floor)
    flux = stretch * (l * l - dd * dd) / (2.0 * dd)
    return np.maximum(flux, 0.0)
