"""Hop-distance calibration.

Formula 3.4 contains the average per-hop distance ``r``. The fitting
pipeline folds it into ``theta = s/r``, but the model-accuracy study
(Fig. 3) and briefing need an explicit estimate ``r_hat``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.routing.tree import CollectionTree


def estimate_hop_distance(
    network: Network, tree: CollectionTree = None, min_hops: int = 1
) -> float:
    """Estimate the average physical distance covered per hop.

    If a collection ``tree`` is given, uses the regression-free
    estimator ``mean(euclidean_distance(node, root) / hops(node))``
    over nodes at least ``min_hops`` out, which directly measures the
    distance-per-hop ratio the model divides by. Without a tree, falls
    back to the mean communication-edge length (an overestimate of the
    straight-line progress per hop by the detour factor, but adequate
    since fitting folds ``r`` into ``theta``).
    """
    if tree is None:
        lengths = network.graph.edge_lengths()
        if lengths.size == 0:
            raise ConfigurationError("network has no edges to calibrate from")
        return float(lengths.mean())

    if min_hops < 1:
        raise ConfigurationError(f"min_hops must be >= 1, got {min_hops}")
    mask = tree.hops >= min_hops
    if not np.any(mask):
        raise ConfigurationError(
            f"no nodes at >= {min_hops} hops; cannot calibrate"
        )
    root_pos = network.positions[tree.root]
    d = np.hypot(
        network.positions[mask, 0] - root_pos[0],
        network.positions[mask, 1] - root_pos[1],
    )
    return float(np.mean(d / tree.hops[mask]))
