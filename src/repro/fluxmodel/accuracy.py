"""Model-accuracy statistics (paper Fig. 3).

Fig. 3(a): CDF of the per-node approximation error rate
``|F_measured - F_model| / F_measured`` for networks of different
densities; the paper reports 80%+ of nodes under 0.4. Fig. 3(b):
measured vs modeled flux as a function of hop count, showing that
nodes >= 3 hops out are well modeled while still carrying >70% of the
network flux.

Methodology notes (what it takes to reproduce the 80% figure):

* the measured flux is averaged over a few collection rounds and over
  node neighborhoods, "mitigating the randomness of routing tree
  construction" (paper Section III.B);
* the model prediction is neighborhood-averaged the *same* way —
  comparing a smoothed measurement against a raw point prediction
  systematically inflates the error near the sink where the kernel is
  steep;
* the scale factor ``s/r`` is least-squares fitted (equivalently, the
  integrated-factor treatment of Section IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fluxmodel.calibration import estimate_hop_distance
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.network.topology import Network
from repro.routing.spt import build_collection_tree
from repro.traffic.smoothing import smooth_flux
from repro.util.rng import RandomState, as_generator
from repro.util.stats import empirical_cdf


def _measured_and_modeled(
    network: Network,
    sink: np.ndarray,
    stretch: float,
    tree_rounds: int,
    smooth_radius_factor: float,
    rng: RandomState,
):
    """Shared pipeline: averaged measurement, matched-smoothing model.

    Returns ``(tree, measured_smooth, modeled_smooth)`` where the model
    is scale-fitted to the measurement.
    """
    if tree_rounds < 1:
        raise ConfigurationError(f"tree_rounds must be >= 1, got {tree_rounds}")
    if smooth_radius_factor < 0:
        raise ConfigurationError(
            f"smooth_radius_factor must be >= 0, got {smooth_radius_factor}"
        )
    gen = as_generator(rng)
    sink = np.asarray(sink, dtype=float)
    trees = [build_collection_tree(network, sink, rng=gen) for _ in range(tree_rounds)]
    weights = np.full(network.node_count, float(stretch))
    measured = np.mean([t.subtree_aggregate(weights) for t in trees], axis=0)
    tree = trees[0]

    r_hat = estimate_hop_distance(network, tree)
    model = DiscreteFluxModel(network.field, network.positions, d_floor=r_hat)
    kernel = model.geometry_kernel(network.positions[tree.root])

    if smooth_radius_factor > 0:
        radius = smooth_radius_factor * network.radius
        measured_s = smooth_flux(network, measured, radius=radius)
        kernel_s = smooth_flux(network, kernel, radius=radius)
    else:
        measured_s, kernel_s = measured, kernel
    denom = float(kernel_s @ kernel_s)
    theta = float(kernel_s @ measured_s) / denom if denom > 0 else 0.0
    return tree, measured, measured_s, theta * kernel_s


def approximation_error_rates(
    network: Network,
    sink: np.ndarray,
    stretch: float = 1.0,
    min_hops: int = 1,
    tree_rounds: int = 3,
    smooth_radius_factor: float = 2.0,
    rng: RandomState = None,
) -> np.ndarray:
    """Per-node error rates ``|F' - F_model| / F'`` for one sink.

    Parameters
    ----------
    min_hops:
        Exclude nodes closer than this many hops to the sink (Fig. 3a
        uses all nodes; Fig. 3b motivates ``min_hops=3``).
    tree_rounds:
        Collection rounds averaged into the measurement.
    smooth_radius_factor:
        Neighborhood-averaging radius as a multiple of the radio
        radius, applied identically to measurement and model
        (0 disables smoothing).
    """
    tree, _, measured_s, modeled_s = _measured_and_modeled(
        network, sink, stretch, tree_rounds, smooth_radius_factor, rng
    )
    mask = (tree.hops >= min_hops) & (measured_s > 0)
    if not np.any(mask):
        raise ConfigurationError("no nodes pass the min_hops / positive-flux filter")
    return np.abs(measured_s[mask] - modeled_s[mask]) / measured_s[mask]


def flux_by_hops(
    network: Network,
    sink: np.ndarray,
    stretch: float = 1.0,
    tree_rounds: int = 3,
    smooth_radius_factor: float = 2.0,
    rng: RandomState = None,
) -> Dict[str, np.ndarray]:
    """Measured vs modeled flux per node, keyed for the Fig. 3(b) scatter.

    Returns ``hops``, ``measured``, ``modeled`` arrays over reachable
    nodes, plus ``flux_fraction_beyond`` where entry ``k`` is the share
    of the total (raw, unsmoothed) network flux carried by nodes at
    >= k hops — the "energy of the network flux" preserved when
    restricting attention to far nodes (paper: >= 3 hops keeps >70%).
    """
    tree, measured_raw, measured_s, modeled_s = _measured_and_modeled(
        network, sink, stretch, tree_rounds, smooth_radius_factor, rng
    )
    reach = tree.reachable
    hops = tree.hops[reach]
    flux = measured_raw[reach]
    total = float(flux.sum())
    max_h = int(hops.max())
    beyond = np.array(
        [float(flux[hops >= k].sum()) / total for k in range(max_h + 1)]
    )
    return {
        "hops": hops,
        "measured": measured_s[reach],
        "modeled": modeled_s[reach],
        "flux_fraction_beyond": beyond,
    }


@dataclass
class ModelAccuracyReport:
    """Aggregated Fig. 3 statistics for one network configuration."""

    average_degree: float
    error_rates: np.ndarray
    cdf_x: np.ndarray
    cdf_y: np.ndarray
    fraction_below_04: float
    flux_fraction_beyond_3_hops: float

    def row(self) -> str:
        """One printable summary row."""
        return (
            f"degree={self.average_degree:5.1f}  "
            f"P[err<=0.4]={self.fraction_below_04:5.1%}  "
            f"median_err={float(np.median(self.error_rates)):.3f}  "
            f"flux(>=3 hops)={self.flux_fraction_beyond_3_hops:5.1%}"
        )


def model_accuracy_report(
    network: Network,
    sink_count: int = 5,
    stretch: float = 1.0,
    min_hops: int = 1,
    tree_rounds: int = 3,
    smooth_radius_factor: float = 2.0,
    rng: RandomState = None,
) -> ModelAccuracyReport:
    """Run the Fig. 3 analysis: sample sinks, pool error rates, build CDF."""
    if sink_count < 1:
        raise ConfigurationError(f"sink_count must be >= 1, got {sink_count}")
    gen = as_generator(rng)
    sinks = network.field.sample_uniform(sink_count, gen)
    rates = []
    beyond3 = []
    for sink in sinks:
        rates.append(
            approximation_error_rates(
                network,
                sink,
                stretch=stretch,
                min_hops=min_hops,
                tree_rounds=tree_rounds,
                smooth_radius_factor=smooth_radius_factor,
                rng=gen,
            )
        )
        by_hops = flux_by_hops(
            network,
            sink,
            stretch=stretch,
            tree_rounds=tree_rounds,
            smooth_radius_factor=smooth_radius_factor,
            rng=gen,
        )
        frac = by_hops["flux_fraction_beyond"]
        beyond3.append(float(frac[min(3, frac.size - 1)]))
    pooled = np.concatenate(rates)
    xs, ys = empirical_cdf(pooled)
    below = float(np.count_nonzero(pooled <= 0.4)) / pooled.size
    return ModelAccuracyReport(
        average_degree=network.average_degree(),
        error_rates=pooled,
        cdf_x=xs,
        cdf_y=ys,
        fraction_below_04=below,
        flux_fraction_beyond_3_hops=float(np.mean(beyond3)),
    )
