"""Discrete flux model — paper Formula 3.4.

For discrete networks the per-node flux at distance ``d`` from the
sink is ``F ~= s (l^2 - d^2) / (2 d r)`` where ``r`` is the average
hop distance. Since ``s`` and ``r`` only appear as the ratio ``s/r``,
the fitting code treats ``theta = s/r`` as a single integrated factor,
and the model exposes the *geometry kernel*

    g(node; sink) = (l^2 - d^2) / (2 d)

so the flux prediction is ``F = theta * g`` — linear in ``theta``.
This linearity is what makes the batched stretch solve in
:mod:`repro.fingerprint.objective` possible.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.rays import boundary_distances
from repro.network.topology import Network
from repro.util.validation import check_positive


class DiscreteFluxModel:
    """Vectorized Formula-3.4 predictor over a fixed node set.

    Parameters
    ----------
    field:
        Deployment field (supplies boundary ray casting for ``l``).
    node_positions:
        ``(n, 2)`` positions at which flux is predicted — typically
        the sniffer nodes.
    d_floor:
        Clamp on the sink-node distance ``d``. Formula 3.4 diverges as
        ``d -> 0`` and the paper observes (Fig. 3b) that nodes >= 3
        hops out are the well-modeled ones; clamping ``d`` to about one
        hop length keeps near-sink samples from dominating the NLS
        objective. Defaults to 1.0 (≈ the hop distance at the paper's
        densities); calibrate with
        :func:`repro.fluxmodel.calibration.estimate_hop_distance`.
    """

    def __init__(
        self,
        field: Field,
        node_positions: np.ndarray,
        d_floor: float = 1.0,
    ):
        node_positions = np.asarray(node_positions, dtype=float)
        if node_positions.ndim != 2 or node_positions.shape[1] != 2:
            raise ConfigurationError(
                f"node_positions must have shape (n, 2), got {node_positions.shape}"
            )
        self.field = field
        self.node_positions = node_positions
        self.d_floor = check_positive("d_floor", d_floor)

    @property
    def node_count(self) -> int:
        return self.node_positions.shape[0]

    def geometry_kernel(self, sink: np.ndarray) -> np.ndarray:
        """``g_i = (l_i^2 - d_i^2) / (2 d_i)`` for one sink position.

        Returns ``(n,)``; out-of-field sinks are clipped onto the field
        first (candidate samples can land marginally outside after disc
        resampling).
        """
        sink = np.asarray(sink, dtype=float).reshape(2)
        if not bool(self.field.contains(sink[None, :])[0]):
            sink = self.field.clip(sink)
        d = np.hypot(
            self.node_positions[:, 0] - sink[0],
            self.node_positions[:, 1] - sink[1],
        )
        l = boundary_distances(self.field, sink, self.node_positions)
        dd = np.maximum(d, self.d_floor)
        return np.maximum((l * l - dd * dd) / (2.0 * dd), 0.0)

    def geometry_kernels(
        self,
        sinks: np.ndarray,
        engine=None,
        out: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Stacked kernels for many candidate sinks: ``(m, n)``.

        This is the inner loop of candidate search, evaluated for
        thousands of candidates per filtering round. Evaluation is
        delegated to :func:`repro.engine.kernels.
        evaluate_geometry_kernels`: broadcast over the (sink, node)
        product (no flattened pair-grid materialization), streamed in
        ``chunk_size`` blocks, and fanned out over ``engine``'s workers
        when one is passed — bitwise-identical to the serial float64
        result either way. ``out`` lets batch producers (the
        fingerprint-map builder) write kernels straight into their own
        storage.
        """
        from repro.engine.kernels import evaluate_geometry_kernels

        return evaluate_geometry_kernels(
            self.field,
            self.node_positions,
            sinks,
            self.d_floor,
            engine=engine,
            out=out,
            chunk_size=chunk_size,
        )

    def predict(self, sinks: np.ndarray, thetas: Sequence[float]) -> np.ndarray:
        """Superposed model flux ``F_i = sum_j theta_j g_ij``.

        Parameters
        ----------
        sinks:
            ``(K, 2)`` sink positions.
        thetas:
            Length-K integrated stretch factors ``s_j / r``.
        """
        sinks = np.asarray(sinks, dtype=float)
        if sinks.ndim == 1:
            sinks = sinks[None, :]
        thetas = np.asarray(thetas, dtype=float)
        if thetas.shape != (sinks.shape[0],):
            raise ConfigurationError(
                f"need one theta per sink: {sinks.shape[0]} sinks, "
                f"{thetas.shape} thetas"
            )
        if np.any(thetas < 0):
            raise ConfigurationError("thetas must be non-negative")
        kernels = self.geometry_kernels(sinks)  # (K, n)
        return thetas @ kernels

    def restrict_to(self, indices: np.ndarray) -> "DiscreteFluxModel":
        """A model over a subset of the nodes (e.g. non-NaN sniffers)."""
        indices = np.asarray(indices, dtype=np.int64)
        return DiscreteFluxModel(
            self.field, self.node_positions[indices], d_floor=self.d_floor
        )


def model_flux(
    network: Network,
    sink: np.ndarray,
    stretch: float,
    hop_distance: float,
    d_floor: Optional[float] = None,
) -> np.ndarray:
    """Formula 3.4 flux at *every* network node for one sink.

    Convenience wrapper used by the model-accuracy study (Fig. 3) and
    by briefing, where ``s`` and ``r`` are known or estimated
    separately rather than folded into ``theta``.
    """
    check_positive("stretch", stretch)
    check_positive("hop_distance", hop_distance)
    model = DiscreteFluxModel(
        network.field,
        network.positions,
        d_floor=hop_distance if d_floor is None else d_floor,
    )
    theta = stretch / hop_distance
    return model.predict(np.asarray(sink, dtype=float)[None, :], [theta])
