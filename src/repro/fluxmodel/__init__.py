"""The paper's parameterized network flux model (Section III.B)."""

from repro.fluxmodel.continuous import continuous_flux
from repro.fluxmodel.discrete import DiscreteFluxModel, model_flux
from repro.fluxmodel.calibration import estimate_hop_distance
from repro.fluxmodel.empirical import (
    CalibratedFluxModel,
    EmpiricalKernel,
    fit_empirical_kernel,
)
from repro.fluxmodel.accuracy import (
    ModelAccuracyReport,
    approximation_error_rates,
    flux_by_hops,
    model_accuracy_report,
)

__all__ = [
    "continuous_flux",
    "DiscreteFluxModel",
    "model_flux",
    "estimate_hop_distance",
    "CalibratedFluxModel",
    "EmpiricalKernel",
    "fit_empirical_kernel",
    "approximation_error_rates",
    "flux_by_hops",
    "ModelAccuracyReport",
    "model_accuracy_report",
]
