"""Empirically calibrated flux kernels.

The closed-form kernel ``g = (l^2 - d^2) / (2 d)`` (Formula 3.4) is an
idealization; its residual bias is the dominant error source of the
attack. An adversary with *probe access* — the ability to walk through
the field once and record the flux their own collections induce — can
instead *learn* the kernel: regress observed per-node flux against the
geometry features ``(d, l)`` of each node relative to the probe sink.

:class:`EmpiricalKernel` bins the normalized radial coordinate
``d / l`` (the kernel is scale-free in that ratio up to the ``l^2``
amplitude factor) and fits a per-bin correction to the closed form.
The calibrated model then multiplies the analytic kernel by the
learned correction profile. The empirical-kernel ablation bench
measures how much this buys the attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, FittingError
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry.field import Field
from repro.geometry.rays import boundary_distances
from repro.network.topology import Network
from repro.routing.spt import build_collection_tree
from repro.traffic.smoothing import smooth_flux
from repro.util.rng import RandomState, as_generator


@dataclass
class EmpiricalKernel:
    """Learned multiplicative correction over the analytic kernel.

    Attributes
    ----------
    bin_edges:
        ``(B+1,)`` edges over the normalized coordinate ``rho = d/l``.
    corrections:
        ``(B,)`` mean ratio ``measured / analytic`` per bin.
    """

    bin_edges: np.ndarray
    corrections: np.ndarray

    def __post_init__(self) -> None:
        if self.bin_edges.ndim != 1 or self.bin_edges.size < 2:
            raise ConfigurationError("bin_edges must have at least 2 entries")
        if self.corrections.shape != (self.bin_edges.size - 1,):
            raise ConfigurationError(
                "corrections must have one entry per bin"
            )
        if np.any(~np.isfinite(self.corrections)):
            raise ConfigurationError("corrections must be finite")

    def correction_at(self, rho: np.ndarray) -> np.ndarray:
        """Correction factor at normalized radii ``rho = d/l`` (clipped)."""
        rho = np.clip(np.asarray(rho, dtype=float), 0.0, 1.0)
        idx = np.clip(
            np.searchsorted(self.bin_edges, rho, side="right") - 1,
            0,
            self.corrections.size - 1,
        )
        return self.corrections[idx]


def fit_empirical_kernel(
    network: Network,
    probe_count: int = 5,
    stretch: float = 1.0,
    bins: int = 12,
    smooth: bool = True,
    d_floor: float = 1.0,
    rng: RandomState = None,
) -> EmpiricalKernel:
    """Learn the correction profile from ``probe_count`` probe collections.

    Each probe: a collection tree rooted at a random position, flux
    measured network-wide, the analytic kernel evaluated at every node
    (with the *same* ``d_floor`` the attack model will use), and the
    per-bin correction fitted as ``sum(measured) / sum(analytic)`` —
    the least-squares-optimal multiplicative factor per bin, which
    weights by flux magnitude instead of letting tiny far-field ratios
    dominate.
    """
    if probe_count < 1:
        raise ConfigurationError(f"probe_count must be >= 1, got {probe_count}")
    if bins < 2:
        raise ConfigurationError(f"bins must be >= 2, got {bins}")
    gen = as_generator(rng)

    edges = np.linspace(0.0, 1.0, bins + 1)
    measured_sums = np.zeros(bins)
    analytic_sums = np.zeros(bins)
    counts = np.zeros(bins)
    model = DiscreteFluxModel(network.field, network.positions, d_floor=d_floor)

    for _ in range(probe_count):
        sink = network.field.sample_uniform(1, gen)[0]
        tree = build_collection_tree(network, sink, rng=gen)
        measured = tree.subtree_aggregate(
            np.full(network.node_count, float(stretch))
        )
        if smooth:
            measured = smooth_flux(network, measured)
        root_pos = network.positions[tree.root]
        d = np.hypot(
            network.positions[:, 0] - root_pos[0],
            network.positions[:, 1] - root_pos[1],
        )
        l = boundary_distances(network.field, root_pos, network.positions)
        analytic = model.geometry_kernel(root_pos)
        ok = (analytic > 1e-9) & (measured > 0) & (l > 1e-9)
        rho = np.clip(d[ok] / l[ok], 0.0, 1.0 - 1e-12)
        idx = np.clip(np.searchsorted(edges, rho, side="right") - 1, 0, bins - 1)
        np.add.at(measured_sums, idx, measured[ok])
        np.add.at(analytic_sums, idx, analytic[ok])
        np.add.at(counts, idx, 1.0)

    populated = np.flatnonzero((counts > 0) & (analytic_sums > 0))
    if populated.size == 0:
        raise FittingError("no usable probe samples; cannot calibrate")
    corrections = np.full(bins, np.nan)
    corrections[populated] = (
        measured_sums[populated] / analytic_sums[populated]
    )
    # Fill empty bins from their nearest populated neighbor.
    for b in range(bins):
        if not np.isfinite(corrections[b]):
            nearest = populated[np.argmin(np.abs(populated - b))]
            corrections[b] = corrections[nearest]
    return EmpiricalKernel(bin_edges=edges, corrections=corrections)


class CalibratedFluxModel(DiscreteFluxModel):
    """Analytic kernel times a learned per-``d/l`` correction profile.

    Drop-in replacement for :class:`DiscreteFluxModel` in the NLS
    pipeline; the correction is absorbed into the geometry kernel, so
    the linear-in-theta structure (and batched solving) is preserved.
    """

    def __init__(
        self,
        field: Field,
        node_positions: np.ndarray,
        kernel: EmpiricalKernel,
        d_floor: float = 1.0,
    ):
        super().__init__(field, node_positions, d_floor=d_floor)
        self.kernel = kernel

    def geometry_kernels(
        self, sinks: np.ndarray, engine=None, out=None, chunk_size=None
    ) -> np.ndarray:
        base = super().geometry_kernels(
            sinks, engine=engine, out=out, chunk_size=chunk_size
        )
        sinks = np.asarray(sinks, dtype=float)
        if sinks.ndim == 1:
            sinks = sinks[None, :]
        sinks = self.field.clip(sinks)
        # Correct in place: ``base`` is either our fresh allocation or
        # the caller-supplied ``out`` — both must end up corrected.
        for j in range(sinks.shape[0]):
            d = np.hypot(
                self.node_positions[:, 0] - sinks[j, 0],
                self.node_positions[:, 1] - sinks[j, 1],
            )
            l = boundary_distances(self.field, sinks[j], self.node_positions)
            rho = np.where(l > 1e-12, d / np.maximum(l, 1e-12), 1.0)
            base[j] *= self.kernel.correction_at(rho)
        return base

    def geometry_kernel(self, sink: np.ndarray) -> np.ndarray:
        return self.geometry_kernels(np.asarray(sink, dtype=float)[None, :])[0]

    def restrict_to(self, indices: np.ndarray) -> "CalibratedFluxModel":
        indices = np.asarray(indices, dtype=np.int64)
        return CalibratedFluxModel(
            self.field,
            self.node_positions[indices],
            kernel=self.kernel,
            d_floor=self.d_floor,
        )
