"""Async network control plane in front of the serving layers.

The gateway is the deployment's front door: an :mod:`asyncio` TCP
server (:class:`GatewayServer`) speaking a newline-delimited JSON
protocol (:mod:`repro.gateway.protocol`) that multiplexes thousands of
cheap concurrent connections into the admission queue of one
:class:`~repro.serve.LocalizationService` or
:class:`~repro.fleet.ServeFleet`, preserving the serve layer's
exactly-one-typed-reply guarantee end to end. Requests are stamped with
span ids at the door, the scheduler records per-stage timestamps as
they cross admission → fuse → solve → reply, and
:class:`GatewayGovernor` closes the loop by auto-tuning the service's
latency knobs from the observed decomposition.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.governor import GatewayGovernor
from repro.gateway.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    localize_request_from_frame,
    observation_from_wire,
    observation_to_wire,
    reply_to_frame,
    track_request_from_frame,
)
from repro.gateway.server import GatewayMetrics, GatewayServer

__all__ = [
    "GatewayClient",
    "GatewayGovernor",
    "GatewayMetrics",
    "GatewayServer",
    "MAX_FRAME_BYTES",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "localize_request_from_frame",
    "observation_from_wire",
    "observation_to_wire",
    "reply_to_frame",
    "track_request_from_frame",
]
