"""Closed-loop auto-tuning of a served deployment's latency knobs.

:class:`GatewayGovernor` closes the loop that the per-stage latency
decomposition opens: it watches the observed batched reply p95 and the
admission queue depth and moves three runtime knobs of a
:class:`~repro.serve.LocalizationService` with an AIMD law —
multiplicative tightening when the SLO is violated, additive relaxation
when there is comfortable headroom:

``target_p95_s``
    The :class:`~repro.serve.scheduler.AdaptiveBatchController` linger
    SLO. Tightened (× ``decrease``) when observed p95 overshoots —
    the scheduler lingers less, trading batch depth for latency —
    and relaxed (+ ``target_step_s``) toward the configured ceiling
    when there is headroom, recovering fusion efficiency.
``fusion_min_depth``
    The scheduler's fused-path threshold. Raised when overloaded at
    shallow queue depth (singleton dispatch is cheaper than fusion
    bookkeeping there), lowered back toward its baseline on headroom.
``admission_capacity``
    The admission queue's ``capacity``. Shrunk when the queue is the
    problem (deep backlog while the SLO is violated) so excess load is
    refused *typed* at the door instead of aging past its deadline
    inside, and re-grown additively on headroom.

Two guards keep the loop stable: **hysteresis** (a violation or
headroom streak must persist ``patience`` consecutive ticks before any
move) and a **cooldown** (after a move the governor holds for
``cooldown_ticks`` ticks so the system can express the new settings).
Every knob is clamped to a configured range, and every adjustment is
counted in :meth:`~repro.serve.metrics.ServerMetrics.
record_governor_adjustment`, appended to a bounded event log, and
logged — an operator can always reconstruct *why* the knobs are where
they are.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

_LOG = logging.getLogger(__name__)


class GatewayGovernor:
    """AIMD feedback controller over one service's latency knobs.

    Parameters
    ----------
    service:
        A started :class:`~repro.serve.LocalizationService` (the knobs
        live on ``service.scheduler.controller`` and ``service.queue``).
    slo_p95_s:
        The reply-latency p95 objective the loop defends.
    interval_s:
        Tick period of the background thread (:meth:`start`). Tests
        drive :meth:`tick` directly instead.
    patience / cooldown_ticks:
        Hysteresis: consecutive out-of-band ticks required before a
        move, and post-move hold ticks.
    decrease / target_step_s / capacity_step:
        The AIMD constants: multiplicative-decrease factor and the two
        additive-increase steps.
    headroom:
        Relaxation threshold as a fraction of the SLO: p95 below
        ``headroom * slo_p95_s`` counts as comfortable.
    p95_source:
        Override for the observed p95 (a callable returning seconds);
        defaults to the service's reply-latency reservoir. Lets tests
        script a load shift deterministically.
    """

    def __init__(
        self,
        service,
        slo_p95_s: float,
        interval_s: float = 0.5,
        patience: int = 2,
        cooldown_ticks: int = 2,
        decrease: float = 0.7,
        target_step_s: float = 0.005,
        capacity_step: int = 64,
        headroom: float = 0.5,
        target_range_s: Optional[tuple] = None,
        depth_range: tuple = (1, 8),
        capacity_range: Optional[tuple] = None,
        p95_source: Optional[Callable[[], float]] = None,
        event_capacity: int = 128,
    ):
        if slo_p95_s <= 0:
            raise ConfigurationError(
                f"slo_p95_s must be > 0, got {slo_p95_s}"
            )
        if interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be > 0, got {interval_s}"
            )
        if patience < 1 or cooldown_ticks < 0:
            raise ConfigurationError(
                f"patience must be >= 1 and cooldown_ticks >= 0, "
                f"got {patience}/{cooldown_ticks}"
            )
        if not 0.0 < decrease < 1.0:
            raise ConfigurationError(
                f"decrease must be in (0, 1), got {decrease}"
            )
        if not 0.0 < headroom < 1.0:
            raise ConfigurationError(
                f"headroom must be in (0, 1), got {headroom}"
            )
        self.service = service
        self.slo_p95_s = float(slo_p95_s)
        self.interval_s = float(interval_s)
        self.patience = int(patience)
        self.cooldown_ticks = int(cooldown_ticks)
        self.decrease = float(decrease)
        self.target_step_s = float(target_step_s)
        self.capacity_step = int(capacity_step)
        self.headroom = float(headroom)
        queue = service.queue
        controller = service.scheduler.controller
        baseline_capacity = int(queue.capacity)
        self.target_range_s = (
            tuple(target_range_s)
            if target_range_s is not None
            else (self.slo_p95_s / 8.0, self.slo_p95_s)
        )
        self.depth_range = (int(depth_range[0]), int(depth_range[1]))
        self.capacity_range = (
            tuple(int(c) for c in capacity_range)
            if capacity_range is not None
            else (max(1, baseline_capacity // 8), baseline_capacity)
        )
        self._baseline_depth = int(service.scheduler.fusion_min_depth)
        self._p95_source = p95_source or (
            lambda: service.metrics.latency_quantiles()["p95"]
        )
        if controller.target_p95_s is None:
            # The loop needs a live knob to move; seed it at the SLO.
            controller.target_p95_s = self.slo_p95_s
        self.ticks = 0
        self.adjustments_total = 0
        self._over = 0
        self._under = 0
        self._cooldown = 0
        self.events: deque = deque(maxlen=int(event_capacity))
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # The control law.
    # ------------------------------------------------------------------
    def tick(self) -> List[Dict]:
        """One control decision; returns the adjustments made (if any)."""
        self.ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        p95 = float(self._p95_source())
        if not np.isfinite(p95):
            return []  # no traffic yet; nothing to react to
        if p95 > self.slo_p95_s:
            self._over += 1
            self._under = 0
            if self._over >= self.patience:
                return self._apply(self._tighten(p95), p95)
        elif p95 < self.headroom * self.slo_p95_s:
            self._under += 1
            self._over = 0
            if self._under >= self.patience:
                return self._apply(self._relax(p95), p95)
        else:
            self._over = 0
            self._under = 0
        return []

    def _tighten(self, p95: float) -> List[Dict]:
        """SLO violated: multiplicative decrease of latency spenders."""
        moves = []
        queue = self.service.queue
        controller = self.service.scheduler.controller
        current = float(controller.target_p95_s)
        proposed = self._clamp(current * self.decrease, self.target_range_s)
        if proposed != current:
            controller.target_p95_s = proposed
            moves.append(self._move("target_p95_s", current, proposed,
                                    "p95 over SLO: linger less"))
        depth = queue.depth_hint()
        if depth >= max(2, queue.capacity // 2):
            # The backlog is the problem: shed at the door.
            current_cap = int(queue.capacity)
            proposed_cap = self._clamp(
                int(current_cap * self.decrease), self.capacity_range
            )
            if proposed_cap != current_cap:
                queue.capacity = proposed_cap
                moves.append(self._move(
                    "admission_capacity", current_cap, proposed_cap,
                    "p95 over SLO with deep backlog: shed at admission",
                ))
        else:
            # Shallow queue yet slow: fusion bookkeeping is not paying
            # for itself; dispatch more batches singly.
            current_depth = int(self.service.scheduler.fusion_min_depth)
            proposed_depth = self._clamp(current_depth + 1, self.depth_range)
            if proposed_depth != current_depth:
                self._set_fusion_depth(proposed_depth)
                moves.append(self._move(
                    "fusion_min_depth", current_depth, proposed_depth,
                    "p95 over SLO at shallow depth: widen singleton path",
                ))
        return moves

    def _relax(self, p95: float) -> List[Dict]:
        """Comfortable headroom: additive recovery toward baselines."""
        moves = []
        queue = self.service.queue
        controller = self.service.scheduler.controller
        current = float(controller.target_p95_s)
        proposed = self._clamp(
            current + self.target_step_s, self.target_range_s
        )
        if proposed != current:
            controller.target_p95_s = proposed
            moves.append(self._move("target_p95_s", current, proposed,
                                    "headroom: linger longer for fusion"))
        current_cap = int(queue.capacity)
        proposed_cap = self._clamp(
            current_cap + self.capacity_step, self.capacity_range
        )
        if proposed_cap != current_cap:
            queue.capacity = proposed_cap
            moves.append(self._move(
                "admission_capacity", current_cap, proposed_cap,
                "headroom: re-admit load",
            ))
        current_depth = int(self.service.scheduler.fusion_min_depth)
        if current_depth > self._baseline_depth:
            proposed_depth = self._clamp(
                current_depth - 1, self.depth_range
            )
            if proposed_depth != current_depth:
                self._set_fusion_depth(proposed_depth)
                moves.append(self._move(
                    "fusion_min_depth", current_depth, proposed_depth,
                    "headroom: restore fusion depth",
                ))
        return moves

    def _apply(self, moves: List[Dict], p95: float) -> List[Dict]:
        self._over = 0
        self._under = 0
        if not moves:
            return []
        self._cooldown = self.cooldown_ticks
        metrics = getattr(self.service, "metrics", None)
        for move in moves:
            move["p95_s"] = p95
            move["tick"] = self.ticks
            self.adjustments_total += 1
            self.events.append(move)
            if metrics is not None:
                metrics.record_governor_adjustment(move["knob"])
            _LOG.info(
                "governor: %s %s -> %s (%s; p95=%.4fs slo=%.4fs)",
                move["knob"], move["old"], move["new"], move["reason"],
                p95, self.slo_p95_s,
            )
        return moves

    def _set_fusion_depth(self, depth: int) -> None:
        scheduler = self.service.scheduler
        scheduler.fusion_min_depth = depth
        scheduler.controller.fusion_min_depth = depth

    @staticmethod
    def _move(knob: str, old, new, reason: str) -> Dict:
        return {"knob": knob, "old": old, "new": new, "reason": reason}

    @staticmethod
    def _clamp(value, bounds):
        lo, hi = bounds
        return min(max(value, lo), hi)

    # ------------------------------------------------------------------
    # Background thread and reporting.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-governor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # never kill the loop on a transient read
                _LOG.exception("governor tick failed")

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready controller state, knob values, and recent events."""
        scheduler = self.service.scheduler
        queue = self.service.queue
        return {
            "slo_p95_s": self.slo_p95_s,
            "ticks": self.ticks,
            "adjustments_total": self.adjustments_total,
            "cooldown": self._cooldown,
            "over_streak": self._over,
            "under_streak": self._under,
            "knobs": {
                "target_p95_s": scheduler.controller.target_p95_s,
                "fusion_min_depth": scheduler.fusion_min_depth,
                "admission_capacity": queue.capacity,
            },
            "events": list(self.events),
        }
