"""Asyncio client for the gateway's newline-delimited JSON protocol.

:class:`GatewayClient` owns one TCP connection and one background
reader task that correlates reply frames to in-flight requests by
``id`` — so any number of requests can be pipelined on one connection
and resolved out of order, which is exactly how the benchmark and the
chaos harness drive thousands of concurrent requests from one process.

Exactly-one-reply shows up client-side as: every awaited request either
returns its one reply frame (success *or* typed error frame — check
``frame["ok"]``) or raises :class:`~repro.errors.GatewayError` because
the connection died first. Never two resolutions, never a silent hang.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional

from repro.errors import GatewayError, ProtocolError
from repro.gateway import protocol


class GatewayClient:
    """One connection to a :class:`~repro.gateway.GatewayServer`.

    Use as an async context manager::

        async with GatewayClient("127.0.0.1", port, "probe") as client:
            reply = await client.localize(observation, seed=7)
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "client",
        timeout_s: Optional[float] = 30.0,
    ):
        self.host = host
        self.port = int(port)
        self.client_id = str(client_id)
        self.timeout_s = timeout_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, asyncio.Future] = {}
        self._pushes: asyncio.Queue = asyncio.Queue()
        self._ids = itertools.count(1)
        self._dead: Optional[BaseException] = None

    # ------------------------------------------------------------------
    async def connect(self) -> Dict:
        """Open the connection and complete the ``connect`` handshake."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_FRAME_BYTES
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return await self.request({
            "type": "connect", "client_id": self.client_id,
        })

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(GatewayError("connection closed"))

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def alive(self) -> bool:
        return self._writer is not None and self._dead is None

    # ------------------------------------------------------------------
    # The reader task: route frames to their waiters.
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line or not line.endswith(b"\n"):
                    # EOF or a torn frame: the stream is dead either way.
                    raise GatewayError(
                        "connection closed by gateway"
                        if not line else "torn frame from gateway"
                    )
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise ProtocolError(f"unparseable frame: {exc}") from exc
                self._route(frame)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._dead = exc
            self._fail_pending(exc)

    def _route(self, frame: Dict) -> None:
        frame_id = frame.get("id")
        key = None if frame_id is None else str(frame_id)
        waiter = self._pending.get(key) if key is not None else None
        if waiter is not None and not waiter.done():
            # Subscription pushes reuse the subscribe frame's id but
            # carry a seq; only the first one resolves the request.
            if frame.get("type") == "metrics" and "seq" in frame:
                self._pushes.put_nowait(frame)
                if frame.get("seq") == 0:
                    self._pending.pop(key)
                    waiter.set_result(frame)
                return
            self._pending.pop(key)
            waiter.set_result(frame)
            return
        self._pushes.put_nowait(frame)

    def _fail_pending(self, exc: BaseException) -> None:
        for waiter in self._pending.values():
            if not waiter.done():
                waiter.set_exception(
                    exc if isinstance(exc, GatewayError)
                    else GatewayError(f"{type(exc).__name__}: {exc}")
                )
        self._pending.clear()

    # ------------------------------------------------------------------
    # Requests.
    # ------------------------------------------------------------------
    async def request(self, frame: Dict) -> Dict:
        """Send one frame, await its one correlated reply frame."""
        if self._writer is None:
            raise GatewayError("client is not connected")
        if self._dead is not None:
            raise GatewayError(f"connection is dead ({self._dead})")
        frame = dict(frame)
        frame_id = str(frame.get("id") or f"{self.client_id}-{next(self._ids)}")
        frame["id"] = frame_id
        waiter = asyncio.get_running_loop().create_future()
        self._pending[frame_id] = waiter
        try:
            self._writer.write(protocol.encode_frame(frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(frame_id, None)
            raise GatewayError(f"send failed: {exc}") from exc
        if self.timeout_s is None:
            return await waiter
        return await asyncio.wait_for(waiter, self.timeout_s)

    async def ping(self) -> Dict:
        return await self.request({"type": "ping"})

    async def localize(self, observation, **knobs) -> Dict:
        frame = {"type": "localize",
                 "observation": protocol.observation_to_wire(observation)}
        frame.update(knobs)
        return await self.request(frame)

    async def track_step(self, session_id: str, observation, **knobs) -> Dict:
        frame = {"type": "track_step", "session_id": session_id,
                 "observation": protocol.observation_to_wire(observation)}
        frame.update(knobs)
        return await self.request(frame)

    async def open_session(
        self, session_id: str, user_count: int = 1, seed: int = 0
    ) -> Dict:
        return await self.request({
            "type": "open_session", "session_id": session_id,
            "user_count": int(user_count), "seed": int(seed),
        })

    async def metrics(self) -> Dict:
        return await self.request({"type": "metrics"})

    async def trace_dump(self, limit: Optional[int] = None) -> Dict:
        frame: Dict = {"type": "trace_dump"}
        if limit is not None:
            frame["limit"] = int(limit)
        return await self.request(frame)

    async def subscribe_metrics(
        self, count: int, interval_s: float = 0.05
    ) -> List[Dict]:
        """Subscribe and collect ``count`` pushed metrics frames."""
        await self.request({
            "type": "subscribe_metrics",
            "count": int(count),
            "interval_s": float(interval_s),
        })
        frames: List[Dict] = [await self._pop_push()]
        while len(frames) < count:
            frames.append(await self._pop_push())
        return frames

    async def _pop_push(self) -> Dict:
        if self.timeout_s is None:
            return await self._pushes.get()
        return await asyncio.wait_for(self._pushes.get(), self.timeout_s)
