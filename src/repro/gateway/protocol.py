"""Wire protocol of the gateway: newline-delimited JSON frames.

One frame per line, UTF-8 JSON, ``\\n``-terminated. Every frame is an
object with a ``type`` and (for request/reply correlation) an ``id``
chosen by the client; the gateway echoes the ``id`` on exactly one
reply frame — a typed ``error`` frame when anything goes wrong, never
silence. Floats survive the wire bitwise: ``json`` renders them with
``repr`` shortest-round-trip semantics, so a tracked stream read back
from reply frames is bit-identical to a local loop. Non-finite values
are carried as ``null`` exactly like the stream layer's JSONL archive
format (:func:`repro.stream.sources.observation_to_jsonl`).

Client → gateway frame types
    ``connect``, ``ping``, ``localize``, ``track_step``,
    ``open_session``, ``metrics``, ``subscribe_metrics``,
    ``unsubscribe_metrics``, ``trace_dump``.
Gateway → client frame types
    ``connected``, ``pong``, ``reply`` (success, with ``kind``
    ``localize``/``track_step``), ``error``, ``metrics`` (one-shot and
    subscription pushes), ``traces``, ``session_opened``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.serve.requests import (
    ErrorReply,
    LocalizeReply,
    LocalizeRequest,
    TrackStepReply,
    TrackStepRequest,
)
from repro.traffic.measurement import FluxObservation

#: Hard per-frame byte ceiling (readline limit); an overlong line is a
#: protocol error, not an allocation.
MAX_FRAME_BYTES = 1 << 20

#: Wire-level error codes (frame ``type="error"``, field ``code``).
#: Service-level ``ErrorReply`` codes pass through unchanged; these
#: name failures that never reached the service.
ERROR_BAD_FRAME = "bad_frame"
ERROR_BAD_REQUEST = "bad_request"
ERROR_UNKNOWN_TYPE = "unknown_type"
ERROR_FRAME_TOO_LARGE = "frame_too_large"

#: Request-frame knobs forwarded verbatim to :class:`LocalizeRequest`.
_LOCALIZE_KNOBS = (
    "user_count", "candidate_count", "top_m", "restarts", "sweeps",
    "seed", "seed_top_k", "use_map", "deadline_s",
)


def encode_frame(frame: Dict) -> bytes:
    """One frame → one ``\\n``-terminated JSON line."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict:
    """One received line → frame dict; :class:`ProtocolError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if not isinstance(frame.get("type"), str) or not frame["type"]:
        raise ProtocolError("frame needs a string 'type'")
    return frame


def _wire_float(value: float) -> Optional[float]:
    value = float(value)
    return value if math.isfinite(value) else None


def observation_to_wire(observation: FluxObservation) -> Dict:
    """Observation → wire dict (``null`` for non-finite readings)."""
    record = {
        "time": float(observation.time),
        "sniffers": [int(s) for s in observation.sniffers],
        "values": [_wire_float(v) for v in observation.values],
    }
    if observation.raw_values is not None:
        record["raw_values"] = [float(v) for v in observation.raw_values]
    return record


def observation_from_wire(record) -> FluxObservation:
    """Wire dict → observation; :class:`ProtocolError` on bad shape."""
    if not isinstance(record, dict):
        raise ProtocolError(
            f"observation must be an object, got {type(record).__name__}"
        )
    try:
        raw = record.get("raw_values")
        return FluxObservation(
            time=float(record["time"]),
            sniffers=np.asarray(record["sniffers"], dtype=np.int64),
            values=np.asarray(record["values"], dtype=float),
            raw_values=None if raw is None else np.asarray(raw, dtype=float),
        )
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            f"bad observation ({type(exc).__name__}: {exc})"
        ) from exc


# ----------------------------------------------------------------------
# Request frames → service requests.
# ----------------------------------------------------------------------
def _frame_identity(frame: Dict, client_id: str) -> Tuple[str, str]:
    frame_id = frame.get("id")
    if not isinstance(frame_id, (str, int)) or frame_id == "":
        raise ProtocolError(f"{frame['type']} frame needs an 'id'")
    return str(frame_id), str(frame.get("client_id") or client_id)


def localize_request_from_frame(
    frame: Dict, client_id: str, span_id: Optional[str] = None
) -> LocalizeRequest:
    request_id, client = _frame_identity(frame, client_id)
    knobs = {k: frame[k] for k in _LOCALIZE_KNOBS if frame.get(k) is not None}
    try:
        return LocalizeRequest(
            request_id=request_id,
            client_id=client,
            observation=observation_from_wire(frame.get("observation")),
            span_id=span_id,
            **knobs,
        )
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            f"bad localize frame ({type(exc).__name__}: {exc})"
        ) from exc


def track_request_from_frame(
    frame: Dict, client_id: str, span_id: Optional[str] = None
) -> TrackStepRequest:
    request_id, client = _frame_identity(frame, client_id)
    try:
        return TrackStepRequest(
            request_id=request_id,
            client_id=client,
            session_id=str(frame.get("session_id") or ""),
            observation=observation_from_wire(frame.get("observation")),
            deadline_s=frame.get("deadline_s"),
            span_id=span_id,
        )
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            f"bad track_step frame ({type(exc).__name__}: {exc})"
        ) from exc


# ----------------------------------------------------------------------
# Service replies → reply frames.
# ----------------------------------------------------------------------
def _positions_to_wire(positions: np.ndarray) -> list:
    return [[_wire_float(x), _wire_float(y)] for x, y in np.asarray(positions)]


def reply_to_frame(reply, span_id: Optional[str] = None) -> Dict:
    """Any service reply → its wire frame (typed error frames included)."""
    if isinstance(reply, LocalizeReply):
        best = reply.result.best
        frame = {
            "type": "reply",
            "kind": "localize",
            "id": reply.request_id,
            "client_id": reply.client_id,
            "ok": True,
            "estimates": _positions_to_wire(reply.estimates()),
            "best_objective": _wire_float(best.objective),
            "best_thetas": [_wire_float(t) for t in best.thetas],
            "fit_count": len(reply.result.fits),
            "latency_s": _wire_float(reply.latency_s),
            "batch_size": reply.batch_size,
        }
    elif isinstance(reply, TrackStepReply):
        frame = {
            "type": "reply",
            "kind": "track_step",
            "id": reply.request_id,
            "client_id": reply.client_id,
            "ok": True,
            "session_id": reply.session_id,
            "stepped": reply.step is not None,
            "skip_reason": reply.skip_reason,
            "estimates": _positions_to_wire(reply.estimates),
            "latency_s": _wire_float(reply.latency_s),
            "batch_size": reply.batch_size,
        }
    elif isinstance(reply, ErrorReply):
        frame = {
            "type": "error",
            "id": reply.request_id,
            "client_id": reply.client_id,
            "ok": False,
            "code": reply.code,
            "message": reply.message,
            "latency_s": _wire_float(reply.latency_s),
        }
    else:
        raise ProtocolError(
            f"cannot frame reply of type {type(reply).__name__}"
        )
    if span_id is not None:
        frame["span_id"] = span_id
    return frame


def error_frame(
    frame_id: Optional[str], code: str, message: str
) -> Dict:
    """A wire-level typed error frame (protocol failures, bad requests)."""
    return {
        "type": "error",
        "id": frame_id,
        "ok": False,
        "code": code,
        "message": message,
    }
