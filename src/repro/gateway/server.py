"""Asyncio TCP gateway: thousands of cheap connections, one service.

:class:`GatewayServer` runs an :mod:`asyncio` event loop on a dedicated
daemon thread and speaks the newline-delimited JSON protocol of
:mod:`repro.gateway.protocol` to any number of concurrent connections,
multiplexing them into the admission queue of one backend — a
:class:`~repro.serve.LocalizationService` or a
:class:`~repro.fleet.ServeFleet` (anything with ``submit`` returning a
resolving future). Connections are event-loop state, not threads, so
connection count is bounded by file descriptors, not by stacks.

The serve layer's exactly-one-typed-reply invariant extends end to end:

* every well-formed request frame produces exactly one reply frame on
  its connection — the service future *always* resolves, and the frame
  carrying it is written as soon as it does;
* a malformed frame gets a typed ``error`` frame (never a crash, never
  a dropped connection — framing survives because frames are
  line-delimited);
* a connection that dies before its reply is written has that reply
  *discarded and counted* (``replies_dropped``), never blocking the
  scheduler, never resurrected.

Tracing starts here: each request frame is stamped with a span id
(``<gateway name>-<connection>-<frame id>``) that rides the request's
``span_id`` field through the scheduler's stage stamps, and the
gateway's own two legs — ``gateway_in`` (read → admitted) and
``gateway_out`` (future resolved → frame written) — are recorded into
the backend's :class:`~repro.serve.metrics.ServerMetrics` when it has
one, completing the per-stage latency decomposition.

Fault sites (deterministic, plan-driven — see :mod:`repro.faults`):
``gateway.client.slow`` stalls before a reply write, ``gateway.conn.
half_open`` aborts the transport on frame receipt, ``gateway.frame.
torn`` writes half a reply frame and tears the connection down.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.faults import clock as _clock
from repro.faults.plan import should_fire
from repro.gateway import protocol
from repro.metrics import LatencyReservoir
from repro.serve.metrics import ServerMetrics, _nan_safe_deep

_LOG = logging.getLogger(__name__)


class GatewayMetrics:
    """Connection- and frame-level counters of one gateway (thread-safe)."""

    def __init__(self, latency_capacity: int = 4096):
        self._lock = threading.Lock()
        self.connections_opened = 0
        self.connections_closed = 0
        self.connections_open = 0  # gauge
        self.frames_received = 0
        self.frames_sent = 0
        self.replies_dropped = 0  # resolved, but the connection was gone
        self.protocol_errors = 0
        self.requests_forwarded = 0
        self.faults_injected: Dict[str, int] = {}
        self._ingress = LatencyReservoir(latency_capacity)  # gateway_in
        self._egress = LatencyReservoir(latency_capacity)  # gateway_out

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_open += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1
            self.connections_open -= 1

    def frame_received(self) -> None:
        with self._lock:
            self.frames_received += 1

    def frame_sent(self) -> None:
        with self._lock:
            self.frames_sent += 1

    def reply_dropped(self) -> None:
        with self._lock:
            self.replies_dropped += 1

    def protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def request_forwarded(self, ingress_s: float) -> None:
        with self._lock:
            self.requests_forwarded += 1
            self._ingress.record(ingress_s)

    def egress(self, seconds: float) -> None:
        with self._lock:
            self._egress.record(seconds)

    def fault_injected(self, site: str) -> None:
        with self._lock:
            self.faults_injected[site] = self.faults_injected.get(site, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            ingress = self._ingress.quantiles((0.50, 0.95))
            egress = self._egress.quantiles((0.50, 0.95))
            return {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "connections_open": self.connections_open,
                "frames_received": self.frames_received,
                "frames_sent": self.frames_sent,
                "replies_dropped": self.replies_dropped,
                "protocol_errors": self.protocol_errors,
                "requests_forwarded": self.requests_forwarded,
                "faults_injected": dict(self.faults_injected),
                "gateway_in_p50_s": ingress["p50"],
                "gateway_in_p95_s": ingress["p95"],
                "gateway_out_p50_s": egress["p50"],
                "gateway_out_p95_s": egress["p95"],
            }


class _Connection:
    """Per-connection mutable state (event-loop confined)."""

    __slots__ = ("conn_id", "writer", "client_id", "closed", "inflight",
                 "subscription")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.conn_id = conn_id
        self.writer = writer
        self.client_id = f"conn-{conn_id}"
        self.closed = False
        self.inflight = 0
        self.subscription: Optional[asyncio.Task] = None


class GatewayServer:
    """The network front door; see the module docstring.

    Parameters
    ----------
    backend:
        A started :class:`~repro.serve.LocalizationService` or
        :class:`~repro.fleet.ServeFleet`. The gateway never owns its
        lifecycle — callers start and stop the backend.
    host / port:
        Bind address; ``port=0`` (the default) picks a free ephemeral
        port, published via :attr:`port` and in :meth:`snapshot`.
    name:
        Span-id prefix, useful when several gateways front one fleet.
    governor:
        Optional :class:`~repro.gateway.governor.GatewayGovernor`;
        started and stopped with the server.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "gw",
        governor=None,
        subscribe_interval_s: float = 0.25,
    ):
        if not callable(getattr(backend, "submit", None)):
            raise ConfigurationError(
                f"backend must expose submit(), "
                f"got {type(backend).__name__}"
            )
        if subscribe_interval_s <= 0:
            raise ConfigurationError(
                f"subscribe_interval_s must be > 0, got {subscribe_interval_s}"
            )
        self.backend = backend
        self.host = host
        self._requested_port = int(port)
        self.name = str(name)
        self.governor = governor
        self.subscribe_interval_s = float(subscribe_interval_s)
        self.metrics = GatewayMetrics()
        backend_metrics = getattr(backend, "metrics", None)
        self._server_metrics = (
            backend_metrics
            if isinstance(backend_metrics, ServerMetrics)
            else None
        )
        self._conn_ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._bound_port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None
        self._tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def port(self) -> Optional[int]:
        """The bound port once started (``None`` before)."""
        return self._bound_port

    def start(self) -> int:
        """Bind, spawn the event-loop thread, return the bound port."""
        if self._thread is not None:
            raise ConfigurationError("gateway already started")
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(started,),
            name=f"repro-gateway-{self.name}", daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise ConfigurationError("gateway event loop failed to start")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise ConfigurationError(
                f"gateway failed to bind {self.host}:{self._requested_port} "
                f"({self._startup_error})"
            )
        if self.governor is not None:
            self.governor.start()
        return self._bound_port

    def _run(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.host, self._requested_port,
                    limit=protocol.MAX_FRAME_BYTES,
                )
            )
            self._bound_port = int(
                self._server.sockets[0].getsockname()[1]
            )
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
            # stop() requested: tear down inside the loop's thread.
            loop.run_until_complete(self._shutdown())
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        # Every live task on this private loop belongs to the gateway
        # (connection handlers, reply waiters, subscription pushers).
        tasks = [
            task for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def stop(self) -> None:
        """Stop accepting, cancel connection tasks, join the thread."""
        if self._thread is None:
            return
        if self.governor is not None:
            self.governor.stop()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready gateway state: endpoint, counters, governor."""
        snap = {
            "name": self.name,
            "host": self.host,
            "port": self._bound_port,
            "backend": type(self.backend).__name__,
        }
        snap.update(self.metrics.snapshot())
        if self.governor is not None:
            snap["governor"] = self.governor.snapshot()
        return snap

    # ------------------------------------------------------------------
    # Connection handling (event-loop thread from here down).
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(next(self._conn_ids), writer)
        self.metrics.connection_opened()
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Line longer than the frame limit: framing is
                    # unrecoverable, answer typed and hang up.
                    self.metrics.protocol_error()
                    await self._write(conn, protocol.error_frame(
                        None, protocol.ERROR_FRAME_TOO_LARGE,
                        f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                    ))
                    break
                except (ConnectionError, asyncio.CancelledError):
                    break
                if not line:
                    break  # clean EOF
                if not line.endswith(b"\n"):
                    break  # torn final line: peer died mid-frame
                await self._dispatch(conn, line)
                if conn.closed:
                    break
        finally:
            conn.closed = True
            if conn.subscription is not None:
                conn.subscription.cancel()
            self.metrics.connection_closed()
            self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        received_at = _clock.monotonic()
        self.metrics.frame_received()
        try:
            frame = protocol.decode_frame(line)
        except ProtocolError as exc:
            self.metrics.protocol_error()
            await self._write(conn, protocol.error_frame(
                None, protocol.ERROR_BAD_FRAME, str(exc)
            ))
            return
        kind = frame["type"]
        frame_id = frame.get("id")
        if frame_id is not None:
            frame_id = str(frame_id)

        if kind in ("localize", "track_step"):
            spec = should_fire("gateway.conn.half_open")
            if spec is not None:
                # Half-open peer: the transport dies right now, without
                # a FIN. Whatever is in flight resolves into _write's
                # closed-connection branch and is counted, not hung.
                self.metrics.fault_injected("gateway.conn.half_open")
                conn.closed = True
                conn.writer.transport.abort()
                return
            await self._forward(conn, frame, frame_id, kind, received_at)
        elif kind == "connect":
            if frame.get("client_id"):
                conn.client_id = str(frame["client_id"])
            await self._write(conn, {
                "type": "connected",
                "id": frame_id,
                "client_id": conn.client_id,
                "server": {"name": self.name, "port": self._bound_port},
            })
        elif kind == "ping":
            await self._write(conn, {"type": "pong", "id": frame_id})
        elif kind == "open_session":
            await self._open_session(conn, frame, frame_id)
        elif kind == "metrics":
            await self._write(conn, {
                "type": "metrics",
                "id": frame_id,
                "snapshot": self._metrics_payload(),
            })
        elif kind == "subscribe_metrics":
            self._subscribe(conn, frame, frame_id)
        elif kind == "unsubscribe_metrics":
            if conn.subscription is not None:
                conn.subscription.cancel()
                conn.subscription = None
            await self._write(conn, {"type": "metrics_unsubscribed",
                                     "id": frame_id})
        elif kind == "trace_dump":
            await self._write(conn, _nan_safe_deep({
                "type": "traces",
                "id": frame_id,
                "traces": (
                    self._server_metrics.recent_traces(frame.get("limit"))
                    if self._server_metrics is not None else []
                ),
                "stages": (
                    self._server_metrics.stage_quantiles()
                    if self._server_metrics is not None else {}
                ),
                "gateway": self.metrics.snapshot(),
            }))
        else:
            self.metrics.protocol_error()
            await self._write(conn, protocol.error_frame(
                frame_id, protocol.ERROR_UNKNOWN_TYPE,
                f"unknown frame type {kind!r}",
            ))

    async def _forward(
        self,
        conn: _Connection,
        frame: Dict,
        frame_id: Optional[str],
        kind: str,
        received_at: float,
    ) -> None:
        """Build the typed request, admit it, and arm the reply task."""
        span_id = f"{self.name}-{conn.conn_id}-{frame_id}"
        try:
            if kind == "localize":
                request = protocol.localize_request_from_frame(
                    frame, conn.client_id, span_id
                )
            else:
                request = protocol.track_request_from_frame(
                    frame, conn.client_id, span_id
                )
        except ProtocolError as exc:
            self.metrics.protocol_error()
            await self._write(conn, protocol.error_frame(
                frame_id, protocol.ERROR_BAD_REQUEST, str(exc)
            ))
            return
        try:
            future = self.backend.submit(request)
        except Exception as exc:
            await self._write(conn, protocol.error_frame(
                frame_id, protocol.ERROR_BAD_REQUEST,
                f"{type(exc).__name__}: {exc}",
            ))
            return
        ingress_s = _clock.monotonic() - received_at
        self.metrics.request_forwarded(ingress_s)
        if self._server_metrics is not None:
            self._server_metrics.record_stage("gateway_in", ingress_s)
        conn.inflight += 1
        task = asyncio.ensure_future(
            self._reply_when_done(conn, span_id, future)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _reply_when_done(
        self, conn: _Connection, span_id: str, future
    ) -> None:
        """Await the service future and write its one reply frame."""
        try:
            reply = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            # Gateway shutdown: the backend future still resolves for
            # its own bookkeeping; the connection is going away.
            self.metrics.reply_dropped()
            return
        finally:
            conn.inflight -= 1
        resolved_at = _clock.monotonic()
        frame = protocol.reply_to_frame(reply, span_id=span_id)
        wrote = await self._write(conn, frame, is_reply=True)
        if wrote:
            egress_s = _clock.monotonic() - resolved_at
            self.metrics.egress(egress_s)
            if self._server_metrics is not None:
                self._server_metrics.record_stage("gateway_out", egress_s)

    async def _write(
        self, conn: _Connection, frame: Dict, is_reply: bool = False
    ) -> bool:
        """Write one frame; ``False`` (and counted) when the peer is gone."""
        if conn.closed or conn.writer.is_closing():
            if is_reply:
                self.metrics.reply_dropped()
            return False
        spec = should_fire("gateway.client.slow")
        if spec is not None:
            self.metrics.fault_injected("gateway.client.slow")
            await asyncio.sleep(spec.delay_s)
            if conn.closed or conn.writer.is_closing():
                if is_reply:
                    self.metrics.reply_dropped()
                return False
        data = protocol.encode_frame(frame)
        spec = should_fire("gateway.frame.torn")
        if spec is not None:
            # Half the frame goes out, then the transport dies: the
            # peer sees a line with no terminator and must treat the
            # stream as dead (readline framing makes that unambiguous).
            self.metrics.fault_injected("gateway.frame.torn")
            conn.closed = True
            try:
                conn.writer.write(data[: max(1, len(data) // 2)])
                conn.writer.transport.abort()
            except (ConnectionError, OSError, RuntimeError):
                pass
            if is_reply:
                self.metrics.reply_dropped()
            return False
        try:
            conn.writer.write(data)
            await conn.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            conn.closed = True
            if is_reply:
                self.metrics.reply_dropped()
            return False
        self.metrics.frame_sent()
        return True

    # ------------------------------------------------------------------
    # Non-request frames.
    # ------------------------------------------------------------------
    async def _open_session(
        self, conn: _Connection, frame: Dict, frame_id: Optional[str]
    ) -> None:
        session_id = str(frame.get("session_id") or "")
        user_count = frame.get("user_count", 1)
        seed = int(frame.get("seed", 0))
        try:
            if not session_id:
                raise ConfigurationError("open_session needs a session_id")
            if hasattr(self.backend, "fleet_snapshot"):
                self.backend.open_session(
                    session_id, int(user_count), seed=seed
                )
            else:
                self.backend.open_session(
                    session_id, int(user_count),
                    rng=np.random.default_rng(seed),
                )
        except Exception as exc:
            await self._write(conn, protocol.error_frame(
                frame_id, protocol.ERROR_BAD_REQUEST,
                f"{type(exc).__name__}: {exc}",
            ))
            return
        await self._write(conn, {
            "type": "session_opened",
            "id": frame_id,
            "session_id": session_id,
            "user_count": int(user_count),
        })

    def _metrics_payload(self) -> Dict:
        payload = {"gateway": self.metrics.snapshot()}
        if self.governor is not None:
            payload["governor"] = self.governor.snapshot()
        if self._server_metrics is not None:
            payload["service"] = self._server_metrics.snapshot()
        elif hasattr(self.backend, "fleet_snapshot"):
            payload["fleet"] = self.backend.fleet_snapshot()
        return _nan_safe_deep(payload)

    def _subscribe(
        self, conn: _Connection, frame: Dict, frame_id: Optional[str]
    ) -> None:
        if conn.subscription is not None:
            conn.subscription.cancel()
        interval = float(
            frame.get("interval_s") or self.subscribe_interval_s
        )
        count = frame.get("count")

        async def _push() -> None:
            sent = 0
            try:
                while count is None or sent < int(count):
                    frame_out = {
                        "type": "metrics",
                        "id": frame_id,
                        "seq": sent,
                        "snapshot": self._metrics_payload(),
                    }
                    if not await self._write(conn, frame_out):
                        return
                    sent += 1
                    await asyncio.sleep(max(interval, 0.01))
            except asyncio.CancelledError:
                pass

        task = asyncio.ensure_future(_push())
        conn.subscription = task
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
