"""The fleet router: N worker processes behind one submit() front end.

:class:`ServeFleet` is the horizontal-scale layer over
:class:`~repro.serve.service.LocalizationService`. It forks N worker
processes (each a full admission+scheduler+engine stack, see
:mod:`repro.fleet.worker`), routes requests to them by consistent
hashing (:mod:`repro.fleet.hashring`), and preserves the serve layer's
core contract across process deaths: **every submitted request resolves
to exactly one typed reply**.

Placement and affinity
    ``TrackStepRequest`` traffic is pinned to the worker that owns the
    session (placed by ``ring.owner(session_id)`` at open time) — the
    scheduler's per-session FIFO only holds inside one process.
    ``LocalizeRequest`` traffic hashes on ``client_id``, which keeps a
    client's stream of one-shot requests on one admission queue (its
    fairness lane) without any shared state.

Failure semantics (exactly-one-reply, checkpoint-bounded replay)
    The router keeps every in-flight request in a seq-keyed pending map
    until its reply arrives; the first reply wins and duplicates are
    dropped. When a worker dies (detected by exit-code polling — pipe
    EOF is unreliable under fork, siblings inherit the fd), the router
    drains the dead worker's pipe (replies it managed to send still
    count), respawns a replacement *in the same ring slot* (so no other
    session remaps), resumes the dead worker's sessions from their
    latest checkpoints, and redelivers the still-unanswered envelopes in
    submission order. Workers checkpoint each session *before* each
    tracking reply leaves the process, so redelivered steps replay
    forward from exactly the last replied-to step; a step that was
    applied but never answered is deduplicated by the session's
    monotonic-time window (the client sees a skip reply — effectively
    once). A request that outlives ``redelivery_limit`` worker deaths is
    answered with a ``worker_crashed`` :class:`~repro.serve.requests.
    ErrorReply` instead of being retried forever.

Migration (rebalance)
    :meth:`add_worker` / :meth:`remove_worker` change the ring and then
    migrate exactly the sessions whose owner changed (~1/N of them):
    new submits for a migrating session buffer at the router, a ``ckpt``
    barrier drains and checkpoints it on the old owner, the new owner
    resumes from that checkpoint, and the buffer flushes. Within the
    session's own stream the trajectory is bitwise-continuous — the
    checkpoint restores the tracker and its RNG exactly.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing as mp
import os
import signal
import tempfile
import threading
import time
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ServeError, WorkerCrashed
from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.metrics import FleetMetrics, merge_worker_snapshots
from repro.fleet.worker import (
    SessionSpec,
    WorkerSpec,
    checkpoint_path,
    worker_main,
)
from repro.fpmap.registry import MapRegistry
from repro.serve.requests import (
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_SESSION,
    ERROR_WORKER_CRASHED,
    ErrorReply,
    LocalizeRequest,
    TrackStepRequest,
)

_MAP_MODES = ("full", "sharded")

#: Poll interval of the pump loop's liveness check.
_PUMP_TICK_S = 0.05


class _Worker:
    """Router-side record of one worker slot (survives respawns)."""

    def __init__(self, worker_id: int, spec: WorkerSpec):
        self.id = worker_id
        self.spec = spec
        self.proc: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.alive = False
        self.recovering = False
        self.backlog: List[tuple] = []  # envelopes held during recovery


class _Pending:
    """One in-flight request: resolves exactly once, survives respawns."""

    __slots__ = ("seq", "request", "future", "worker_id", "attempts", "t0")

    def __init__(self, seq: int, request, future, worker_id: int):
        self.seq = seq
        self.request = request
        self.future = future
        self.worker_id = worker_id
        self.attempts = 1
        self.t0 = time.monotonic()


class _Session:
    """Router-side session record: placement + recovery material."""

    def __init__(self, spec: SessionSpec, owner: int, ckpt: str):
        self.spec = spec
        self.owner = owner
        self.ckpt = ckpt
        self.migrating = False
        self.buffer: List[int] = []  # seqs parked while migrating


class ServeFleet:
    """N-worker sharded serving fleet for one deployment.

    Parameters
    ----------
    field / sniffer_positions / d_floor:
        The deployment, as for :class:`~repro.serve.service.
        LocalizationService`.
    workers:
        Initial worker-process count (>= 1).
    fingerprint_map / registry / map_resolution:
        Map wiring. A prebuilt map (or one built via ``registry`` when
        ``map_resolution`` is set) is handed to every worker in
        ``map_mode="full"`` — replies then match a single-process
        service bitwise. ``map_mode="sharded"`` spatially partitions it
        through the registry (:meth:`~repro.fpmap.registry.MapRegistry.
        get_or_partition`) so each worker loads ~1/N of the cells;
        coverage per worker shrinks accordingly and the fleet size is
        fixed (no :meth:`add_worker`/:meth:`remove_worker`).
    checkpoint_dir:
        Where session checkpoints live. ``None`` uses a private temp
        directory (cleaned by :meth:`stop`). Checkpoints are the
        failover and migration currency, so the directory must be
        shared by all workers (it is: they fork from this process).
    redelivery_limit:
        How many worker deaths one request may survive before the
        router answers ``worker_crashed`` instead of redelivering.
    max_batch .. engine_chunk_size:
        Per-worker service knobs, forwarded to :class:`~repro.fleet.
        worker.WorkerSpec`.
    """

    def __init__(
        self,
        field,
        sniffer_positions: np.ndarray,
        d_floor: float = 1.0,
        workers: int = 2,
        fingerprint_map=None,
        registry: Optional[MapRegistry] = None,
        map_resolution: Optional[float] = None,
        map_mode: str = "full",
        cluster_cells: int = 4,
        checkpoint_dir: Optional[str] = None,
        redelivery_limit: int = 3,
        replicas: int = 64,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        adaptive: bool = True,
        target_p95_s: Optional[float] = None,
        fusion_min_depth: int = 2,
        queue_capacity: int = 1024,
        admission_policy: str = "reject",
        engine_workers: int = 0,
        engine_chunk_size: int = 4096,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if map_mode not in _MAP_MODES:
            raise ConfigurationError(
                f"map_mode must be one of {_MAP_MODES}, got {map_mode!r}"
            )
        if redelivery_limit < 1:
            raise ConfigurationError(
                f"redelivery_limit must be >= 1, got {redelivery_limit}"
            )
        self.field = field
        self.sniffer_positions = np.asarray(sniffer_positions, dtype=float)
        self.d_floor = float(d_floor)
        self.map_mode = map_mode
        self.cluster_cells = int(cluster_cells)
        self.redelivery_limit = int(redelivery_limit)
        self.metrics = FleetMetrics()
        self.registry = registry
        if fingerprint_map is None and map_resolution is not None:
            if registry is None:
                registry = self.registry = MapRegistry()
            fingerprint_map = registry.get_or_build(
                field, self.sniffer_positions,
                resolution=map_resolution, d_floor=d_floor,
            )
        elif fingerprint_map is not None and registry is not None:
            registry.register(fingerprint_map)
        self.fingerprint_map = fingerprint_map
        if map_mode == "sharded" and fingerprint_map is None:
            raise ConfigurationError(
                "map_mode='sharded' needs a fingerprint map "
                "(pass fingerprint_map= or map_resolution=)"
            )
        self._tmpdir = None
        if checkpoint_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="fleet-ckpt-")
            checkpoint_dir = self._tmpdir.name
        os.makedirs(checkpoint_dir, exist_ok=True)
        self.checkpoint_dir = str(checkpoint_dir)
        self._service_knobs = dict(
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            adaptive=adaptive,
            target_p95_s=target_p95_s,
            fusion_min_depth=fusion_min_depth,
            queue_capacity=queue_capacity,
            admission_policy=admission_policy,
            engine_workers=engine_workers,
            engine_chunk_size=engine_chunk_size,
        )
        self._initial_workers = int(workers)
        # "fork" shares the (possibly large) fingerprint map with the
        # children copy-on-write; WorkerSpec never crosses a pickle.
        self._ctx = mp.get_context("fork")
        self.ring = ConsistentHashRing(replicas=replicas)
        self._workers: Dict[int, _Worker] = {}
        self._sessions: Dict[str, _Session] = {}
        self._pending: Dict[int, _Pending] = {}
        self._controls: Dict[int, list] = {}  # seq -> [event, ok, payload, wid]
        self._seq = itertools.count(1)
        self._lock = threading.RLock()
        self._started = False
        self._stopped = False
        self._pump_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "ServeFleet":
        if self._started:
            raise ConfigurationError("fleet already started")
        self._started = True
        shard_maps = self._shard_maps(self._initial_workers)
        for worker_id in range(self._initial_workers):
            spec = self._worker_spec(shard_maps[worker_id])
            worker = _Worker(worker_id, spec)
            self._workers[worker_id] = worker
            self._spawn(worker)
            worker.alive = True
            self.ring.add(worker_id)
        self._pump_thread = threading.Thread(
            target=self._pump, name="fleet-pump", daemon=True
        )
        self._pump_thread.start()
        return self

    def stop(self) -> Dict[str, object]:
        """Drain every worker, checkpoint every session, shut down.

        Returns ``{"workers": {id: worker stop summary}}``. Requests
        still unanswered after the drain (there should be none — worker
        ``stop`` drains before acking) get ``shutdown`` error replies.
        """
        with self._lock:
            if self._stopped:
                return {"workers": {}}
            self._stopped = True
        summaries: Dict[int, object] = {}
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            try:
                summaries[worker.id] = self._control(worker.id, "stop")
            except (ServeError, WorkerCrashed):
                summaries[worker.id] = None
            if worker.proc is not None:
                worker.proc.join(timeout=10)
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=10)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for entry in leftovers:
            self._answer(entry, ErrorReply(
                request_id=entry.request.request_id,
                client_id=entry.request.client_id,
                code=ERROR_SHUTDOWN,
                message="fleet stopped before evaluation",
                latency_s=time.monotonic() - entry.t0,
            ))
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
        return {"workers": summaries}

    def __enter__(self) -> "ServeFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def worker_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._workers)

    @property
    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def session_owner(self, session_id: str) -> int:
        with self._lock:
            return self._sessions[session_id].owner

    # ------------------------------------------------------------------
    # Worker plumbing.
    # ------------------------------------------------------------------
    def _worker_spec(self, shard_map) -> WorkerSpec:
        return WorkerSpec(
            field=self.field,
            sniffer_positions=self.sniffer_positions,
            d_floor=self.d_floor,
            fingerprint_map=shard_map,
            checkpoint_dir=self.checkpoint_dir,
            **self._service_knobs,
        )

    def _shard_maps(self, count: int) -> List[object]:
        if self.fingerprint_map is None:
            return [None] * count
        if self.map_mode == "full" or count == 1:
            return [self.fingerprint_map] * count
        registry = self.registry if self.registry is not None else MapRegistry()
        return registry.get_or_partition(
            self.fingerprint_map, count, self.cluster_cells
        )

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker.id, worker.spec, child_conn),
            name=f"fleet-worker-{worker.id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the child's end lives in the child now
        worker.proc = proc
        worker.conn = parent_conn

    def _send(self, worker_id: int, envelope: tuple) -> None:
        """Deliver (or park) one envelope; caller holds the lock."""
        worker = self._workers[worker_id]
        if worker.recovering:
            worker.backlog.append(envelope)
            return
        try:
            worker.conn.send(envelope)
        except (OSError, ValueError, BrokenPipeError):
            # Dying worker: the pump's liveness check will fail it over
            # and redeliver from the pending map; park controls too.
            worker.backlog.append(envelope)

    def _control(self, worker_id: int, kind: str, *payload,
                 timeout: float = 120.0):
        """Synchronous control round-trip with one worker."""
        event = threading.Event()
        with self._lock:
            seq = next(self._seq)
            holder = [event, False, None, worker_id]
            self._controls[seq] = holder
            self._send(worker_id, (kind, seq) + payload)
        if not event.wait(timeout):
            with self._lock:
                self._controls.pop(seq, None)
            raise ServeError(
                f"worker {worker_id} did not answer {kind!r} "
                f"within {timeout}s"
            )
        _, ok, result, _ = holder
        if not ok:
            raise ServeError(
                f"worker {worker_id} refused {kind!r}: {result}"
            )
        return result

    # ------------------------------------------------------------------
    # Pump: replies, control acks, liveness.
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while True:
            with self._lock:
                if self._stopped and not self._pending and not self._controls:
                    live = [w for w in self._workers.values() if w.alive]
                    if not live:
                        return
                conns = {
                    w.conn: w for w in self._workers.values()
                    if w.conn is not None and (w.alive or w.recovering)
                }
                stopped = self._stopped
            if not conns:
                if stopped:
                    # Nothing left to read acks from: fail outstanding
                    # controls now instead of letting callers sit out
                    # their full wait timeout.
                    self._fail_controls("fleet pump exited at shutdown")
                    return
                time.sleep(_PUMP_TICK_S)
                continue
            for conn in connection_wait(list(conns), timeout=_PUMP_TICK_S):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue  # liveness check below owns the failover
                self._dispatch(message)
            self._check_liveness()

    def _dispatch(self, message: tuple) -> None:
        kind = message[0]
        if kind == "reply":
            _, _, seq, reply = message
            with self._lock:
                entry = self._pending.pop(seq, None)
            if entry is None:
                self.metrics.record_duplicate_reply()
                return
            self._answer(entry, reply)
        elif kind == "control":
            _, _, seq, ok, payload = message
            with self._lock:
                holder = self._controls.pop(seq, None)
            if holder is not None:
                holder[1], holder[2] = ok, payload
                holder[0].set()

    def _answer(self, entry: _Pending, reply) -> None:
        self.metrics.record_reply(reply.ok, getattr(reply, "code", None))
        entry.future.set_result(reply)

    def _fail_controls(self, reason: str) -> None:
        with self._lock:
            holders = list(self._controls.values())
            self._controls.clear()
        for holder in holders:
            holder[1], holder[2] = False, reason
            holder[0].set()

    def _check_liveness(self) -> None:
        dead: List[_Worker] = []
        drained: List[tuple] = []
        with self._lock:
            if self._stopped:
                for worker in self._workers.values():
                    if worker.alive and worker.proc is not None \
                            and worker.proc.exitcode is not None:
                        worker.alive = False
                        # The exited worker's last words (its stop ack,
                        # late replies) may still sit in the pipe if the
                        # poll loop lost the race with its exit — drain
                        # them or stop() waits out the control timeout.
                        if worker.conn is not None:
                            try:
                                while worker.conn.poll(0):
                                    drained.append(worker.conn.recv())
                            except (EOFError, OSError):
                                pass
                            try:
                                worker.conn.close()
                            except OSError:
                                pass
                            worker.conn = None
            else:
                for worker in self._workers.values():
                    if (
                        worker.alive
                        and not worker.recovering
                        and worker.proc is not None
                        and worker.proc.exitcode is not None
                    ):
                        worker.alive = False
                        worker.recovering = True
                        # Drain what the dead worker still managed to
                        # say — replies already in the pipe settle
                        # their futures and must not be redelivered
                        # (exactly-one-reply). Done here, on the pump
                        # thread, so no other thread ever touches a
                        # conn this loop may be recv-ing on.
                        try:
                            while worker.conn.poll(0):
                                drained.append(worker.conn.recv())
                        except (EOFError, OSError):
                            pass
                        try:
                            worker.conn.close()
                        except OSError:
                            pass
                        worker.conn = None
                        dead.append(worker)
        for message in drained:
            self._dispatch(message)
        for worker in dead:
            self.metrics.record_worker_death()
            # Recover off the pump thread: failover issues controls to
            # the replacement, whose acks this pump must keep serving.
            threading.Thread(
                target=self._failover, args=(worker,),
                name=f"fleet-failover-{worker.id}", daemon=True,
            ).start()

    # ------------------------------------------------------------------
    # Failover: respawn-in-slot, resume, redeliver.
    # ------------------------------------------------------------------
    def _failover(self, worker: _Worker) -> None:
        # The pump already drained and closed the dead incarnation's
        # pipe (see _check_liveness).
        # 1. Respawn a replacement in the SAME ring slot: every other
        #    session's placement is untouched (no remap beyond the
        #    sessions the dead worker already owned).
        self._spawn(worker)
        self.metrics.record_worker_restart()
        # 3. Resume the dead worker's sessions from their newest
        #    checkpoints (written before each reply left the process).
        with self._lock:
            owned = [
                (sid, sess) for sid, sess in self._sessions.items()
                if sess.owner == worker.id
            ]
        for session_id, sess in owned:
            try:
                if os.path.exists(sess.ckpt):
                    self._control_recovering(worker, "resume", sess.ckpt)
                else:  # never checkpointed (open raced the crash)
                    self._control_recovering(worker, "open", sess.spec)
                self.metrics.record_session_resumed()
            except ServeError:
                pass  # redelivery answers unknown_session; bounded below
        # 4. Redeliver still-unanswered envelopes in submission order;
        #    a request that has now crashed redelivery_limit workers is
        #    answered worker_crashed instead.
        give_up: List[_Pending] = []
        with self._lock:
            mine = sorted(
                (e for e in self._pending.values()
                 if e.worker_id == worker.id),
                key=lambda e: e.seq,
            )
            redelivered: List[tuple] = []
            for entry in mine:
                entry.attempts += 1
                if entry.attempts > self.redelivery_limit:
                    del self._pending[entry.seq]
                    give_up.append(entry)
                    continue
                redelivered.append(("req", entry.seq, entry.request))
                self.metrics.record_redelivery()
            # Redelivered envelopes precede anything submitted during
            # the recovery window — per-session FIFO must survive the
            # respawn or later steps would make earlier ones look
            # out-of-order to the session's monotonic-time window.
            worker.backlog[:0] = redelivered
            # Fail any control round-trip that was waiting on the dead
            # incarnation (its reply can never come).
            for seq, holder in list(self._controls.items()):
                if holder[3] == worker.id:
                    del self._controls[seq]
                    holder[1], holder[2] = False, "worker died"
                    holder[0].set()
            backlog, worker.backlog = worker.backlog, []
            worker.recovering = False
            worker.alive = True
            for envelope in backlog:
                self._send(worker.id, envelope)
        for entry in give_up:
            self.metrics.record_redelivery_failure()
            self._answer(entry, ErrorReply(
                request_id=entry.request.request_id,
                client_id=entry.request.client_id,
                code=ERROR_WORKER_CRASHED,
                message=(
                    f"worker {worker.id} crashed "
                    f"{entry.attempts - 1} times holding this request"
                ),
                latency_s=time.monotonic() - entry.t0,
            ))

    def _control_recovering(self, worker: _Worker, kind: str, *payload,
                            timeout: float = 120.0):
        """Control round-trip that bypasses the recovery backlog.

        During failover the slot is marked ``recovering`` (normal sends
        park in the backlog), but the recovery sequence itself must talk
        to the fresh process directly.
        """
        event = threading.Event()
        with self._lock:
            seq = next(self._seq)
            holder = [event, False, None, None]  # no worker tag: don't
            self._controls[seq] = holder         # fail it over with us
            worker.conn.send((kind, seq) + payload)
        if not event.wait(timeout):
            with self._lock:
                self._controls.pop(seq, None)
            raise ServeError(
                f"replacement worker {worker.id} did not answer {kind!r}"
            )
        _, ok, result, _ = holder
        if not ok:
            raise ServeError(
                f"replacement worker {worker.id} refused {kind!r}: {result}"
            )
        return result

    def kill_worker(self, worker_id: int) -> None:
        """Chaos helper: SIGKILL one worker process (no cleanup)."""
        with self._lock:
            worker = self._workers[worker_id]
            proc = worker.proc
        if proc is not None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    # ------------------------------------------------------------------
    # Sessions.
    # ------------------------------------------------------------------
    def open_session(
        self,
        session_id: str,
        user_count: int,
        seed: int = 0,
        config: Optional[dict] = None,
    ) -> int:
        """Open a tracking session on its ring-assigned worker.

        Returns the owning worker id. The worker writes an initial
        checkpoint immediately, so even a session that crashes before
        its first step can be resumed from durable state.
        """
        with self._lock:
            if self._stopped or not self._started:
                raise ConfigurationError("fleet is not running")
            if session_id in self._sessions:
                raise ConfigurationError(
                    f"session {session_id!r} already open"
                )
            owner = self.ring.owner(session_id)
        spec = SessionSpec(
            session_id=session_id, user_count=int(user_count),
            seed=int(seed), config=config,
        )
        self._control(owner, "open", spec)
        with self._lock:
            self._sessions[session_id] = _Session(
                spec, owner, checkpoint_path(self.checkpoint_dir, session_id)
            )
        self.metrics.record_session_opened()
        return owner

    def close_session(self, session_id: str) -> None:
        with self._lock:
            sess = self._sessions.get(session_id)
            if sess is None:
                raise ConfigurationError(f"unknown session {session_id!r}")
            owner = sess.owner
        self._control(owner, "close", session_id)
        with self._lock:
            self._sessions.pop(session_id, None)

    def migrate_session(self, session_id: str, target: int) -> None:
        """Move one live session: drain → checkpoint → reattach.

        New steps submitted while the move is in flight buffer at the
        router and flush to the new owner afterwards, still in
        submission order — the session's reply stream stays
        bitwise-continuous because the checkpoint restores the tracker
        and its RNG exactly where the drained stream stopped.
        """
        with self._lock:
            sess = self._sessions.get(session_id)
            if sess is None:
                raise ConfigurationError(f"unknown session {session_id!r}")
            if target not in self._workers:
                raise ConfigurationError(f"unknown worker {target}")
            if sess.migrating:
                raise ConfigurationError(
                    f"session {session_id!r} is already migrating"
                )
            source = sess.owner
            if source == target:
                return
            sess.migrating = True
        try:
            # Barrier: the worker answers "ckpt" only after the
            # session's last submitted step has replied (and been
            # checkpointed), then closes + re-checkpoints it.
            self._control(source, "ckpt", session_id, sess.ckpt)
            self._control(target, "resume", sess.ckpt)
        except ServeError:
            # Source died mid-migration: its failover already resumed
            # the session on the replacement in the same slot. Keep the
            # old owner and flush the buffer back to it.
            with self._lock:
                sess.migrating = False
                parked, sess.buffer = sess.buffer, []
                for seq in parked:
                    entry = self._pending.get(seq)
                    if entry is not None:
                        self._send(sess.owner, ("req", seq, entry.request))
            raise
        with self._lock:
            sess.owner = target
            sess.migrating = False
            parked, sess.buffer = sess.buffer, []
            for seq in parked:
                entry = self._pending.get(seq)
                if entry is not None:
                    entry.worker_id = target
                    self._send(target, ("req", seq, entry.request))
        self.metrics.record_migration()

    # ------------------------------------------------------------------
    # Rebalance.
    # ------------------------------------------------------------------
    def add_worker(self) -> int:
        """Grow the fleet by one worker and rebalance (~1/N migrates)."""
        if self.map_mode == "sharded":
            raise ConfigurationError(
                "sharded map fleets are fixed-size (the cell partition "
                "is per-worker); use map_mode='full' to scale live"
            )
        with self._lock:
            worker_id = max(self._workers) + 1 if self._workers else 0
            spec = self._worker_spec(self._shard_maps(1)[0])
            worker = _Worker(worker_id, spec)
            self._workers[worker_id] = worker
            self._spawn(worker)
            worker.alive = True
            self.ring.add(worker_id)
        self._rebalance()
        return worker_id

    def remove_worker(self, worker_id: int) -> None:
        """Shrink the fleet: migrate its sessions off, then stop it."""
        if self.map_mode == "sharded":
            raise ConfigurationError(
                "sharded map fleets are fixed-size (the cell partition "
                "is per-worker); use map_mode='full' to scale live"
            )
        with self._lock:
            if worker_id not in self._workers:
                raise ConfigurationError(f"unknown worker {worker_id}")
            if len(self._workers) == 1:
                raise ConfigurationError("cannot remove the last worker")
            self.ring.remove(worker_id)
        self._rebalance()
        worker = self._workers[worker_id]
        try:
            self._control(worker_id, "stop")
        except (ServeError, WorkerCrashed):
            pass
        if worker.proc is not None:
            worker.proc.join(timeout=10)
        with self._lock:
            worker.alive = False
            del self._workers[worker_id]

    def _rebalance(self) -> None:
        """Migrate exactly the sessions whose ring owner changed."""
        with self._lock:
            moves = [
                (sid, self.ring.owner(sid))
                for sid, sess in self._sessions.items()
                if self.ring.owner(sid) != sess.owner and not sess.migrating
            ]
        for session_id, target in moves:
            self.migrate_session(session_id, target)

    # ------------------------------------------------------------------
    # Request path.
    # ------------------------------------------------------------------
    def submit(self, request):
        """Route one request; returns a Future resolving to its reply.

        Exactly-one-reply holds across worker deaths: the future
        resolves with the worker's reply, a redelivered reply, or a
        typed ``worker_crashed``/``shutdown`` error — never twice,
        never not at all.
        """
        if not isinstance(request, (LocalizeRequest, TrackStepRequest)):
            raise ConfigurationError(
                f"request must be a LocalizeRequest or TrackStepRequest, "
                f"got {type(request).__name__}"
            )
        future = concurrent.futures.Future()
        with self._lock:
            if self._stopped or not self._started:
                self.metrics.record_rejection()
                future.set_result(ErrorReply(
                    request_id=request.request_id,
                    client_id=request.client_id,
                    code=ERROR_SHUTDOWN,
                    message="fleet is not running",
                ))
                return future
            if isinstance(request, TrackStepRequest):
                sess = self._sessions.get(request.session_id)
                if sess is None:
                    self.metrics.record_rejection()
                    future.set_result(ErrorReply(
                        request_id=request.request_id,
                        client_id=request.client_id,
                        code=ERROR_UNKNOWN_SESSION,
                        message=(
                            f"session {request.session_id!r} is not open "
                            f"on this fleet"
                        ),
                    ))
                    return future
                worker_id = sess.owner
            else:
                worker_id = self.ring.owner(request.client_id)
            seq = next(self._seq)
            entry = _Pending(seq, request, future, worker_id)
            self._pending[seq] = entry
            self.metrics.record_submit(worker_id)
            if isinstance(request, TrackStepRequest) and sess.migrating:
                sess.buffer.append(seq)  # flushed post-migration
            else:
                self._send(worker_id, ("req", seq, request))
        return future

    def call(self, request, timeout: Optional[float] = None):
        """Blocking convenience: submit, wait, raise on error replies."""
        reply = self.submit(request).result(timeout=timeout)
        if not reply.ok:
            raise reply.to_exception()
        return reply

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def worker_snapshot(self, worker_id: int) -> Optional[dict]:
        """One worker's metrics snapshot (``None`` if unreachable)."""
        try:
            return self._control(worker_id, "metrics", timeout=10.0)
        except (ServeError, KeyError):
            return None

    def fleet_snapshot(self) -> dict:
        """Router counters + per-worker snapshots + fleet aggregate."""
        with self._lock:
            worker_ids = sorted(self._workers)
        snaps = {wid: self.worker_snapshot(wid) for wid in worker_ids}
        return {
            "router": self.metrics.snapshot(),
            "workers": {str(wid): snaps[wid] for wid in worker_ids},
            "aggregate": merge_worker_snapshots(snaps),
        }
