"""Sharded multi-process serving fleet.

One :class:`ServeFleet` router in front of N worker processes, each a
full :class:`~repro.serve.service.LocalizationService`. Sessions are
placed by consistent hashing with affinity (:class:`ConsistentHashRing`),
fingerprint maps optionally shard by spatial cluster
(:func:`partition_map`), dead workers respawn in-slot with
checkpoint-backed session recovery, and live sessions migrate between
workers bitwise-continuously (drain → checkpoint → reattach). See
``docs/ALGORITHMS.md`` §8 for the shard/migration invariants.
"""

from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.metrics import FleetMetrics, merge_worker_snapshots
from repro.fleet.partition import (
    DEFAULT_CLUSTER_CELLS,
    cluster_keys,
    partition_map,
    shard_cells,
    submap,
)
from repro.fleet.router import ServeFleet
from repro.fleet.worker import (
    FAULT_EXIT_CODE,
    SessionSpec,
    WorkerSpec,
    checkpoint_path,
)

__all__ = [
    "ConsistentHashRing",
    "FleetMetrics",
    "merge_worker_snapshots",
    "DEFAULT_CLUSTER_CELLS",
    "cluster_keys",
    "partition_map",
    "shard_cells",
    "submap",
    "ServeFleet",
    "FAULT_EXIT_CODE",
    "SessionSpec",
    "WorkerSpec",
    "checkpoint_path",
]
