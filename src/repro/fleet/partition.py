"""Spatial cluster partitioning of fingerprint maps for shard fleets.

A fleet worker only answers the traffic routed to it, so in
``map_mode="sharded"`` it only needs the slice of the fingerprint map
its traffic actually touches. Cells are grouped into square spatial
*clusters* (blocks of ``cluster_cells x cluster_cells`` grid cells —
the wlan-pos ``CLUSTERKEYSIZE`` idiom: fingerprints keyed by a coarse
cluster key, looked up cluster-locally), and whole clusters are dealt
to shards in round-robin order of their cluster key. The result is a
**disjoint cover**: every cell lands in exactly one shard, shards stay
balanced within one cluster of each other, and each worker's sub-map
holds ~1/N of the signature matrix.

A sub-map is a full :class:`~repro.fpmap.map.FingerprintMap` — same
field, same sniffer set, same deployment hash — restricted to the
shard's cells, so every consumer (seeded localize pools, SMC reseeding,
``validate_against``) accepts it unchanged. What changes is *coverage*:
a sharded worker seeds candidates only from its own cells. The default
fleet mode therefore stays ``"full"`` (every worker shares the whole
map and replies are bitwise-identical to a single-process service);
``"sharded"`` is the memory-bound scale-out option and is documented as
such (docs/ALGORITHMS.md §8).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.fpmap.map import FingerprintMap

#: Grid cells per cluster side — the coarse "cluster key" granularity
#: (wlan-pos keys its incremental fingerprint DB the same way).
DEFAULT_CLUSTER_CELLS = 4


def cluster_keys(
    fmap: FingerprintMap, cluster_cells: int = DEFAULT_CLUSTER_CELLS
) -> np.ndarray:
    """``(C,)`` integer cluster key per map cell.

    The key is the (col, row) of the cell's cluster block on a coarse
    grid of ``cluster_cells * resolution`` spacing anchored at the
    field's bounding-box origin — purely positional, so any process
    computing keys for the same map agrees without coordination.
    """
    if cluster_cells < 1:
        raise ConfigurationError(
            f"cluster_cells must be >= 1, got {cluster_cells}"
        )
    xmin, ymin, _, _ = fmap.field.bounding_box
    block = float(cluster_cells) * float(fmap.resolution)
    cols = np.floor((fmap.cell_positions[:, 0] - xmin) / block).astype(np.int64)
    rows = np.floor((fmap.cell_positions[:, 1] - ymin) / block).astype(np.int64)
    # Dense pairing: rows are bounded by the field extent, so a simple
    # row-major pairing gives one stable scalar key per block.
    width = int(cols.max()) + 1 if cols.size else 1
    return rows * width + cols


def shard_cells(
    fmap: FingerprintMap,
    shards: int,
    cluster_cells: int = DEFAULT_CLUSTER_CELLS,
) -> List[np.ndarray]:
    """Deal the map's cells to ``shards`` disjoint spatial shards.

    Whole clusters (never single cells) move together, keeping each
    shard's cells spatially coherent; clusters are assigned round-robin
    in sorted key order, which balances shard sizes to within one
    cluster. The union of the returned index arrays is exactly
    ``arange(cell_count)``.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    keys = cluster_keys(fmap, cluster_cells)
    unique_keys = np.unique(keys)
    assignment: Dict[int, int] = {
        int(key): rank % shards for rank, key in enumerate(unique_keys)
    }
    owners = np.array([assignment[int(k)] for k in keys], dtype=np.int64)
    return [np.flatnonzero(owners == s) for s in range(shards)]


def submap(fmap: FingerprintMap, cell_indices: np.ndarray) -> FingerprintMap:
    """A shard's view of the map: same deployment, subset of cells.

    The slice copies its rows (workers are separate processes; fork
    gives copy-on-write sharing anyway, and an explicit copy keeps the
    sub-map valid if the parent map is dropped).
    """
    cell_indices = np.asarray(cell_indices, dtype=np.int64)
    if cell_indices.size == 0:
        raise ConfigurationError(
            "shard has no cells; use fewer shards or a finer map"
        )
    if cell_indices.min() < 0 or cell_indices.max() >= fmap.cell_count:
        raise ConfigurationError(
            f"cell indices out of range for a {fmap.cell_count}-cell map"
        )
    return FingerprintMap(
        field=fmap.field,
        cell_positions=fmap.cell_positions[cell_indices].copy(),
        signatures=fmap.signatures[cell_indices].copy(),
        sniffer_positions=fmap.sniffer_positions,
        sniffer_ids=fmap.sniffer_ids,
        resolution=fmap.resolution,
        d_floor=fmap.d_floor,
    )


def partition_map(
    fmap: FingerprintMap,
    shards: int,
    cluster_cells: int = DEFAULT_CLUSTER_CELLS,
) -> Tuple[List[FingerprintMap], List[np.ndarray]]:
    """Split one map into per-shard sub-maps (plus the index cover).

    Returns ``(submaps, cells)`` where ``submaps[s]`` holds exactly the
    cells ``cells[s]`` of the parent map. ``shards=1`` returns the
    parent map itself (no copy) — a single-worker fleet pays nothing.
    """
    if shards == 1:
        return [fmap], [np.arange(fmap.cell_count, dtype=np.int64)]
    cells = shard_cells(fmap, shards, cluster_cells)
    return [submap(fmap, indices) for indices in cells], cells
