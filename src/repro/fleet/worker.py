"""The fleet worker: one process, one full serving stack.

Each worker process runs its own :class:`~repro.serve.service.
LocalizationService` — admission queue, micro-batch scheduler, optional
engine, optional fingerprint-map shard — and speaks a tiny envelope
protocol with the router over a pair of pipes:

parent -> worker
    ``("req", seq, request)`` — serve one Localize/TrackStep request;
    ``("open", seq, spec)`` / ``("resume", seq, path)`` /
    ``("ckpt", seq, session_id, path)`` / ``("close", seq, session_id)``
    — session lifecycle; ``("metrics", seq)`` — snapshot;
    ``("stop", seq)`` — drain, checkpoint, exit.
worker -> parent
    ``("reply", worker_id, seq, reply)`` for requests,
    ``("control", worker_id, seq, ok, payload)`` for everything else.

Two invariants make the fleet's failure semantics work:

* **Checkpoint-before-reply.** After every tracking-step reply (applied
  *or* skipped — skip counters are session state too) the worker
  checkpoints the session before the reply leaves the process. A reply
  the router has seen therefore implies durable state at least that
  far, so crash recovery resumes from the newest replied-to step and
  the router's redelivery of unanswered steps replays forward from
  exactly there (checkpoint-bounded replay).
* **In-order forwarding.** Envelopes are forwarded to the service in
  arrival order and the scheduler keeps per-session FIFO, so a
  ``ckpt`` control acts as a barrier: it waits on the session's last
  submitted future, which resolves only after every earlier step.

The ``fleet.worker.exit`` fault point fires on request receipt and
terminates the process with ``os._exit`` — the chaos harness's way of
killing a worker *between* track steps with seeded determinism.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.faults.plan import should_fire
from repro.serve.requests import TrackStepReply, TrackStepRequest
from repro.serve.service import LocalizationService
from repro.smc.tracker import TrackerConfig
from repro.stream.checkpoint import save_checkpoint

#: Exit code of a fault-injected worker kill (tests assert on it).
FAULT_EXIT_CODE = 17

#: Barrier bound of a ckpt control waiting out a session's last step.
_BARRIER_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to (re)create a tracking session bitwise.

    ``seed`` feeds the tracker's RNG, so reopening from the spec
    reproduces the prior-draw exactly; ``config`` is the
    :class:`~repro.smc.tracker.TrackerConfig` as a plain dict (or
    ``None`` for defaults).
    """

    session_id: str
    user_count: int
    seed: int = 0
    config: Optional[dict] = None


@dataclass
class WorkerSpec:
    """Constructor arguments of one worker's in-process service.

    Built by the router, inherited by the forked child. The
    ``fingerprint_map`` is the worker's slice (the full map in
    ``map_mode="full"``, a spatial shard in ``"sharded"``, ``None``
    without a map); fork makes the handoff copy-on-write.
    """

    field: object
    sniffer_positions: np.ndarray
    d_floor: float = 1.0
    fingerprint_map: object = None
    checkpoint_dir: Optional[str] = None
    max_batch: int = 32
    max_wait_s: float = 0.002
    adaptive: bool = True
    target_p95_s: Optional[float] = None
    fusion_min_depth: int = 2
    queue_capacity: int = 1024
    admission_policy: str = "reject"
    engine_workers: int = 0
    engine_chunk_size: int = 4096
    extra_service_kwargs: dict = dataclass_field(default_factory=dict)

    def build_service(self) -> LocalizationService:
        engine = None
        if self.engine_workers >= 1:
            from repro.engine import Engine

            engine = Engine(
                workers=self.engine_workers,
                chunk_size=self.engine_chunk_size,
            )
        return LocalizationService(
            self.field,
            self.sniffer_positions,
            d_floor=self.d_floor,
            engine=engine,
            fingerprint_map=self.fingerprint_map,
            max_batch=self.max_batch,
            max_wait_s=self.max_wait_s,
            adaptive=self.adaptive,
            target_p95_s=self.target_p95_s,
            fusion_min_depth=self.fusion_min_depth,
            queue_capacity=self.queue_capacity,
            admission_policy=self.admission_policy,
            **self.extra_service_kwargs,
        )


def checkpoint_path(checkpoint_dir: str, session_id: str) -> str:
    """The fleet-wide location of one session's newest checkpoint."""
    return str(Path(checkpoint_dir) / f"{session_id}.ckpt.npz")


def _open_session(service: LocalizationService, spec: SessionSpec):
    config = (
        TrackerConfig(**spec.config) if spec.config is not None else None
    )
    return service.open_session(
        spec.session_id, spec.user_count, config=config, rng=spec.seed
    )


def worker_main(worker_id: int, spec: WorkerSpec, conn) -> None:
    """Run one worker until ``stop`` (or the parent/pipe goes away)."""
    service = spec.build_service().start()
    send_lock = threading.Lock()
    last_track_future: Dict[str, object] = {}

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    def complete_request(seq: int, future) -> None:
        # Runs on the scheduler thread at reply time: persist session
        # state *before* the reply leaves (checkpoint-before-reply).
        reply = future.result()  # service futures always resolve
        if (
            spec.checkpoint_dir is not None
            and isinstance(reply, TrackStepReply)
        ):
            session = service._session_for(reply.session_id)
            if session is not None:
                try:
                    save_checkpoint(
                        session,
                        checkpoint_path(spec.checkpoint_dir, reply.session_id),
                        retry_policy=service.retry_policy,
                    )
                except Exception:  # noqa: BLE001 - durability is
                    # bounded-retry best effort; answering the client
                    # beats hanging its future on a full disk.
                    pass
        try:
            send(("reply", worker_id, seq, reply))
        except (OSError, ValueError):  # pipe gone: router died or is
            pass  # tearing down; nothing left to answer to

    running = True
    while running:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # router gone; daemonized worker just exits
        kind, seq = message[0], message[1]
        if kind == "req":
            request = message[2]
            if should_fire("fleet.worker.exit") is not None:
                os._exit(FAULT_EXIT_CODE)  # simulated kill, no cleanup
            future = service.submit(request)
            if isinstance(request, TrackStepRequest):
                last_track_future[request.session_id] = future
            future.add_done_callback(
                lambda f, seq=seq: complete_request(seq, f)
            )
            continue
        try:
            if kind == "open":
                session_spec: SessionSpec = message[2]
                session = _open_session(service, session_spec)
                path = None
                if spec.checkpoint_dir is not None:
                    path = checkpoint_path(
                        spec.checkpoint_dir, session_spec.session_id
                    )
                    save_checkpoint(session, path,
                                    retry_policy=service.retry_policy)
                send(("control", worker_id, seq, True, path))
            elif kind == "resume":
                path = message[2]
                session = service.resume_session(path)
                send(("control", worker_id, seq, True, session.session_id))
            elif kind == "ckpt":
                session_id, path = message[2], message[3]
                barrier = last_track_future.pop(session_id, None)
                if barrier is not None:
                    barrier.result(timeout=_BARRIER_TIMEOUT_S)
                session = service.close_session(session_id)
                save_checkpoint(session, path,
                                retry_policy=service.retry_policy)
                send(("control", worker_id, seq, True, str(path)))
            elif kind == "close":
                session_id = message[2]
                service.close_session(session_id)
                last_track_future.pop(session_id, None)
                send(("control", worker_id, seq, True, session_id))
            elif kind == "metrics":
                payload = {
                    "worker_id": worker_id,
                    "pid": os.getpid(),
                    "sessions": service.session_ids,
                    "metrics": service.metrics.snapshot(),
                }
                send(("control", worker_id, seq, True, payload))
            elif kind == "stop":
                summary = service.stop(
                    drain=True, checkpoint_dir=spec.checkpoint_dir
                )
                send(("control", worker_id, seq, True, summary))
                running = False
            else:
                send(("control", worker_id, seq, False,
                      f"unknown envelope kind {kind!r}"))
        except Exception as exc:  # typed refusal, never a dead worker
            send(("control", worker_id, seq, False,
                  f"{type(exc).__name__}: {exc}"))
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass
