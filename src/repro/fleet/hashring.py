"""Consistent hashing for session/worker placement.

The fleet router places sessions (and localize clients) on workers by
consistent hashing: each worker contributes ``replicas`` pseudo-random
points on a 64-bit ring, and a key is owned by the first worker point
clockwise of the key's own point. The property the fleet leans on is
**bounded remapping**: adding or removing one worker from an N-worker
ring moves only ~1/N of the key space — every other session keeps its
affinity, so a rebalance migrates the minimum number of live trackers.

Hashes are SHA-1 based and therefore stable across processes, Python
versions, and runs (``hash()`` would be salted per process) — the
router and any external client computing placements agree forever.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


def _point(token: str) -> int:
    """Stable 64-bit ring coordinate of a token."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A ring of worker ids with virtual-node replication.

    Parameters
    ----------
    nodes:
        Initial worker ids (any hashable rendered via ``str``; the
        fleet uses small ints).
    replicas:
        Virtual points per node. More replicas smooth the key-space
        split between nodes (64 keeps the per-node share within a few
        percent of 1/N for small fleets).
    """

    def __init__(self, nodes: Iterable[object] = (), replicas: int = 64):
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self.replicas = int(replicas)
        self._points: List[int] = []       # sorted ring coordinates
        self._owners: Dict[int, object] = {}  # coordinate -> node
        self._nodes: Dict[object, Tuple[int, ...]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[object]:
        return list(self._nodes)

    # ------------------------------------------------------------------
    def add(self, node: object) -> None:
        """Insert a node's virtual points (idempotent duplicates refused)."""
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} already on the ring")
        points = []
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            # SHA-1 collisions between distinct tokens are effectively
            # impossible; skip the pathological duplicate rather than
            # silently re-owning another node's point.
            if point in self._owners:
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node] = tuple(points)

    def remove(self, node: object) -> None:
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} not on the ring")
        for point in self._nodes.pop(node):
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            self._points.pop(index)

    # ------------------------------------------------------------------
    def owner(self, key: str) -> object:
        """The node owning ``key`` (first point clockwise of the key)."""
        if not self._points:
            raise ConfigurationError("hash ring has no nodes")
        point = _point(str(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[self._points[index]]

    def assignments(self, keys: Iterable[str]) -> Dict[str, object]:
        """Owner of every key — the bulk form used by rebalances."""
        return {key: self.owner(key) for key in keys}
