"""Fleet-level metrics: router counters + merged worker snapshots.

The router counts what only it can see — routing decisions, worker
deaths and respawns, redeliveries, duplicate replies dropped by the
exactly-one-reply guard, session migrations — while each worker's
:class:`~repro.serve.metrics.ServerMetrics` keeps counting its own
admission/batching/latency story in its own process.
:func:`merge_worker_snapshots` folds the per-worker snapshots into one
aggregate (summing counters, merging histograms; latency quantiles are
not mergeable across reservoirs and stay per-worker), and
:meth:`FleetMetrics.fleet_snapshot` is the one JSON document the
``/metrics`` endpoint serves for a fleet: ``router`` + ``aggregate`` +
``workers`` sections instead of one flat blob.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Mapping, Optional

#: Worker-snapshot keys that sum across the fleet.
_SUMMED_KEYS = (
    "requests_submitted",
    "replies_ok",
    "replies_error_total",
    "admission_rejections",
    "admission_timeouts",
    "deadline_expiries",
    "queue_depth",
    "batches",
    "fused_candidate_rows",
    "retries_total",
    "backend_fallbacks",
    "backend_reescalations",
    "internal_faults_total",
)

#: Worker-snapshot keys holding ``{label: count}`` dicts that merge.
_MERGED_COUNTER_KEYS = (
    "replies_error",
    "batch_size_histogram",
    "retries",
    "internal_faults",
)


def merge_worker_snapshots(
    snapshots: Mapping[int, Optional[dict]]
) -> dict:
    """Fold per-worker ``ServerMetrics.snapshot()`` dicts into one.

    ``None`` entries (a worker that died before answering the metrics
    probe) are skipped but counted in ``workers_unreachable``.
    """
    aggregate: dict = {key: 0 for key in _SUMMED_KEYS}
    merged: Dict[str, Counter] = {
        key: Counter() for key in _MERGED_COUNTER_KEYS
    }
    reachable = 0
    for snapshot in snapshots.values():
        if snapshot is None:
            continue
        reachable += 1
        metrics = snapshot.get("metrics", snapshot)
        for key in _SUMMED_KEYS:
            value = metrics.get(key)
            if value is not None:
                aggregate[key] += int(value)
        for key in _MERGED_COUNTER_KEYS:
            merged[key].update(metrics.get(key) or {})
    for key in _MERGED_COUNTER_KEYS:
        aggregate[key] = dict(sorted(merged[key].items()))
    sizes = merged["batch_size_histogram"]
    total = sum(sizes.values())
    aggregate["batch_size_mean"] = (
        sum(int(size) * count for size, count in sizes.items()) / total
        if total
        else None
    )
    aggregate["workers_reporting"] = reachable
    aggregate["workers_unreachable"] = len(snapshots) - reachable
    return aggregate


class FleetMetrics:
    """Router-side counters of one :class:`~repro.fleet.ServeFleet`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_submitted = 0
        self.requests_rejected = 0  # router-level overflow/shutdown
        self.routed: Counter = Counter()  # worker id -> envelopes sent
        self.replies_ok = 0
        self.replies_error: Counter = Counter()  # by ErrorReply.code
        self.duplicate_replies = 0  # dropped by exactly-one-reply guard
        self.redeliveries = 0  # envelopes resent after a worker death
        self.redelivery_failures = 0  # answered worker_crashed instead
        self.worker_deaths = 0
        self.worker_restarts = 0
        self.sessions_opened = 0
        self.sessions_resumed = 0  # crash recoveries
        self.migrations = 0  # planned checkpoint-backed moves

    # ------------------------------------------------------------------
    def record_submit(self, worker_id: int) -> None:
        with self._lock:
            self.requests_submitted += 1
            self.routed[int(worker_id)] += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.requests_rejected += 1

    def record_reply(self, ok: bool, code: Optional[str] = None) -> None:
        with self._lock:
            if ok:
                self.replies_ok += 1
            else:
                self.replies_error[str(code)] += 1

    def record_duplicate_reply(self) -> None:
        with self._lock:
            self.duplicate_replies += 1

    def record_redelivery(self, count: int = 1) -> None:
        with self._lock:
            self.redeliveries += int(count)

    def record_redelivery_failure(self) -> None:
        with self._lock:
            self.redelivery_failures += 1

    def record_worker_death(self) -> None:
        with self._lock:
            self.worker_deaths += 1

    def record_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1

    def record_session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def record_session_resumed(self) -> None:
        with self._lock:
            self.sessions_resumed += 1

    def record_migration(self) -> None:
        with self._lock:
            self.migrations += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Router-section counters (JSON-ready)."""
        with self._lock:
            return {
                "requests_submitted": self.requests_submitted,
                "requests_rejected": self.requests_rejected,
                "routed": {
                    str(wid): count
                    for wid, count in sorted(self.routed.items())
                },
                "replies_ok": self.replies_ok,
                "replies_error": dict(sorted(self.replies_error.items())),
                "replies_error_total": int(
                    sum(self.replies_error.values())
                ),
                "duplicate_replies": self.duplicate_replies,
                "redeliveries": self.redeliveries,
                "redelivery_failures": self.redelivery_failures,
                "worker_deaths": self.worker_deaths,
                "worker_restarts": self.worker_restarts,
                "sessions_opened": self.sessions_opened,
                "sessions_resumed": self.sessions_resumed,
                "migrations": self.migrations,
            }
