"""The localization service: one deployment, many logical clients.

:class:`LocalizationService` ties the serve layer together around
*shared* heavyweight state — one :class:`~repro.fingerprint.nls.
NLSLocalizer` (flux model), one optional fingerprint map (via the
:class:`~repro.fpmap.registry.MapRegistry` so concurrent services of
the same deployment share a single build), one optional engine pool —
behind a bounded admission queue and one micro-batching scheduler
thread. Clients call :meth:`submit` with a
:class:`~repro.serve.requests.LocalizeRequest` or
:class:`~repro.serve.requests.TrackStepRequest` and get a
``concurrent.futures.Future`` that always resolves to exactly one
reply: success, or a typed :class:`~repro.serve.requests.ErrorReply`
(rejected, expired, shutdown, crashed) — never an unresolved future,
never a silent drop.

Shutdown is *drain-and-checkpoint*: :meth:`stop` closes admission
(late offers answer ``shutdown``), lets the scheduler drain what was
already admitted, then snapshots every tracking session with the
streaming layer's checkpoint format so a restarted service can
:meth:`resume_session` exactly where each trajectory left off.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.fingerprint.nls import NLSLocalizer
from repro.serve.admission import (
    ADMITTED,
    CLOSED,
    REJECTED,
    TIMED_OUT,
    AdmissionQueue,
    EnvelopePool,
    PendingRequest,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.requests import (
    ERROR_ADMISSION_TIMEOUT,
    ERROR_REJECTED,
    ERROR_SHUTDOWN,
    ErrorReply,
    LocalizeRequest,
    TrackStepRequest,
)
from repro.serve.scheduler import MicroBatchScheduler
from repro.smc.tracker import SequentialMonteCarloTracker
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.session import TrackingSession

_OUTCOME_CODES = {
    REJECTED: ERROR_REJECTED,
    TIMED_OUT: ERROR_ADMISSION_TIMEOUT,
    CLOSED: ERROR_SHUTDOWN,
}


class LocalizationService:
    """Batched request/reply localization and tracking for one deployment.

    Parameters
    ----------
    field / sniffer_positions / d_floor:
        The deployment the service answers for.
    engine:
        Optional :class:`repro.engine.Engine` shared by every batch's
        fused kernel call.
    fingerprint_map:
        Optional prebuilt map. Registered with ``registry`` when one is
        given so other services of the same deployment reuse it.
    registry / map_resolution:
        Without a prebuilt map, setting ``map_resolution`` builds (or
        fetches) the deployment's map from ``registry`` — the shared
        build path. ``registry=None`` with a resolution uses a private
        build.
    max_batch / max_wait_s:
        Micro-batching trigger (``max_batch=1`` is per-request
        dispatch; the benchmark's baseline). With ``adaptive`` on,
        ``max_wait_s`` is the hard ceiling of the controller-sized
        linger window rather than a fixed wait.
    adaptive / target_p95_s / fusion_min_depth:
        The scheduler's :class:`~repro.serve.scheduler.
        AdaptiveBatchController` knobs: ``adaptive`` (default on)
        sizes the linger window from the arrival-rate EWMA and queue
        depth; ``target_p95_s`` optionally caps how long the oldest
        queued request may age before dispatch (SLO-aware);
        ``fusion_min_depth`` is the depth below which fusion is
        bypassed and requests dispatch singly (the depth-k
        generalization of ``eager_single``). ``adaptive=False``
        restores the fixed-window scheduler exactly.
    queue_capacity / admission_policy / block_timeout_s / per_client_limit:
        Admission control (see :class:`~repro.serve.admission.
        AdmissionQueue`).
    eager_single:
        On by default for a service: a lone queued request dispatches
        without the batch-fill linger (the 1-client latency fix); the
        linger still runs whenever two or more requests are queued.
        Only consulted with ``adaptive=False`` — the adaptive
        controller's depth bypass supersedes it.
    metrics:
        Optional externally owned :class:`ServerMetrics`.
    retry_policy:
        :class:`~repro.faults.RetryPolicy` for the scheduler's fused
        kernel pass and the drain checkpoint writes. The default is a
        small bounded policy (3 attempts); pass ``None`` explicitly to
        disable retries.
    fault_threshold / cooldown_s:
        Backend-degradation knobs forwarded to the scheduler's
        :class:`~repro.serve.resilience.BackendGovernor`.
    """

    _DEFAULT_RETRIES = "default"

    def __init__(
        self,
        field,
        sniffer_positions: np.ndarray,
        d_floor: float = 1.0,
        engine=None,
        fingerprint_map=None,
        registry=None,
        map_resolution: Optional[float] = None,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        adaptive: bool = True,
        target_p95_s: Optional[float] = None,
        fusion_min_depth: int = 2,
        queue_capacity: int = 512,
        admission_policy: str = "reject",
        block_timeout_s: Optional[float] = 5.0,
        per_client_limit: Optional[int] = None,
        eager_single: bool = True,
        metrics: Optional[ServerMetrics] = None,
        idle_wait_s: float = 0.05,
        retry_policy=_DEFAULT_RETRIES,
        fault_threshold: int = 3,
        cooldown_s: float = 5.0,
    ):
        if retry_policy == self._DEFAULT_RETRIES:
            retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.005,
                                       max_delay_s=0.1)
        self.retry_policy = retry_policy
        self.localizer = NLSLocalizer(field, sniffer_positions, d_floor=d_floor)
        self.engine = engine
        if fingerprint_map is None and map_resolution is not None:
            if registry is not None:
                fingerprint_map = registry.get_or_build(
                    field, self.localizer.model.node_positions,
                    resolution=map_resolution, d_floor=d_floor,
                )
            else:
                from repro.fpmap import build_fingerprint_map

                fingerprint_map = build_fingerprint_map(
                    field, self.localizer.model.node_positions,
                    resolution=map_resolution, d_floor=d_floor,
                    engine=engine,
                )
        elif fingerprint_map is not None and registry is not None:
            registry.register(fingerprint_map)
        if fingerprint_map is not None:
            # Refuse a wrong-deployment map once, up front — requests
            # then trust it unconditionally.
            fingerprint_map.validate_against(
                field, self.localizer.model.node_positions, d_floor
            )
        self.fingerprint_map = fingerprint_map
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.queue = AdmissionQueue(
            capacity=queue_capacity,
            policy=admission_policy,
            block_timeout_s=block_timeout_s,
            per_client_limit=per_client_limit,
            eager_single=eager_single,
            urgent_slack_s=max(0.01, 4.0 * max_wait_s),
        )
        self._envelopes = EnvelopePool(capacity=max(64, queue_capacity))
        self.scheduler = MicroBatchScheduler(
            localizer=self.localizer,
            queue=self.queue,
            metrics=self.metrics,
            fingerprint_map=fingerprint_map,
            engine=engine,
            session_lookup=self._session_for,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            adaptive=adaptive,
            target_p95_s=target_p95_s,
            fusion_min_depth=fusion_min_depth,
            envelope_pool=self._envelopes,
            idle_wait_s=idle_wait_s,
            retry_policy=retry_policy,
            fault_threshold=fault_threshold,
            cooldown_s=cooldown_s,
        )
        self.metrics.attach_probes(
            kernel_cache=(
                fingerprint_map.cache if fingerprint_map is not None else None
            ),
            controller=self.scheduler.controller,
            arena=self.scheduler.arena,
            envelope_pool=self._envelopes,
        )
        self._sessions: Dict[str, TrackingSession] = {}
        self._sessions_lock = threading.Lock()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "LocalizationService":
        if self._started:
            raise ConfigurationError("service already started")
        self._started = True
        self.scheduler.start()
        return self

    def stop(
        self,
        drain: bool = True,
        checkpoint_dir: Optional[str] = None,
    ) -> Dict[str, object]:
        """Shut down: close admission, drain (or flush), checkpoint.

        Parameters
        ----------
        drain:
            ``True`` answers everything already admitted before the
            scheduler exits; ``False`` flushes the queue with
            ``shutdown`` error replies instead.
        checkpoint_dir:
            When set, every tracking session is saved there as
            ``<session_id>.ckpt.npz`` (the streaming checkpoint format)
            after the scheduler stops — the drain-and-checkpoint
            contract.

        Returns a summary dict: ``flushed`` (envelopes answered with
        shutdown errors) and ``checkpoints`` (paths written, by
        session id).
        """
        if self._stopped:
            return {"flushed": 0, "checkpoints": {}}
        self._stopped = True
        self.queue.close()
        flushed = 0
        if not drain:
            for item in self.queue.drain_all():
                self._complete_shutdown(item)
                self._envelopes.release(item)
                flushed += 1
        if self._started:
            self.scheduler.stop()
        # Anything that raced admission after close() was answered by
        # submit(); anything still queued (scheduler died) flushes here.
        for item in self.queue.drain_all():
            self._complete_shutdown(item)
            self._envelopes.release(item)
            flushed += 1
        checkpoints: Dict[str, str] = {}
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            with self._sessions_lock:
                sessions = dict(self._sessions)
            for session_id, session in sessions.items():
                path = directory / f"{session_id}.ckpt.npz"
                checkpoints[session_id] = str(
                    save_checkpoint(session, path,
                                    retry_policy=self.retry_policy)
                )
        return {"flushed": flushed, "checkpoints": checkpoints}

    def __enter__(self) -> "LocalizationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sessions.
    # ------------------------------------------------------------------
    def open_session(
        self,
        session_id: str,
        user_count: int,
        config=None,
        rng=None,
        truth=None,
    ) -> TrackingSession:
        """Create and register a tracking session on this deployment.

        The tracker shares the service's fingerprint map but runs with
        ``engine=None`` — tracking steps execute on the scheduler
        thread, where the service engine may already be fanning out
        kernel work (the engine nesting rule).
        """
        tracker = SequentialMonteCarloTracker(
            self.localizer.field,
            self.localizer.model.node_positions,
            user_count,
            config=config,
            rng=rng,
            fingerprint_map=self.fingerprint_map,
        )
        session = TrackingSession(session_id, tracker, truth=truth)
        return self.attach_session(session)

    def attach_session(self, session: TrackingSession) -> TrackingSession:
        with self._sessions_lock:
            if session.session_id in self._sessions:
                raise ConfigurationError(
                    f"session {session.session_id!r} already registered"
                )
            self._sessions[session.session_id] = session
        return session

    def resume_session(self, path: str, truth=None) -> TrackingSession:
        """Attach a session restored from a drain checkpoint."""
        session = load_checkpoint(
            path, truth=truth, fingerprint_map=self.fingerprint_map
        )
        return self.attach_session(session)

    def close_session(self, session_id: str) -> TrackingSession:
        with self._sessions_lock:
            if session_id not in self._sessions:
                raise ConfigurationError(f"unknown session {session_id!r}")
            return self._sessions.pop(session_id)

    @property
    def session_ids(self) -> List[str]:
        with self._sessions_lock:
            return list(self._sessions)

    def _session_for(self, session_id: str) -> Optional[TrackingSession]:
        with self._sessions_lock:
            return self._sessions.get(session_id)

    # ------------------------------------------------------------------
    # Request path.
    # ------------------------------------------------------------------
    def submit(self, request):
        """Admit one request; returns a Future resolving to its reply.

        The future *always* resolves — admission refusals resolve it
        immediately with the matching typed error reply.
        """
        if not isinstance(request, (LocalizeRequest, TrackStepRequest)):
            raise ConfigurationError(
                f"request must be a LocalizeRequest or TrackStepRequest, "
                f"got {type(request).__name__}"
            )
        item = self._envelopes.acquire(request)
        # Capture the future before the envelope can reach the
        # scheduler: once offered, the scheduler may answer *and
        # recycle* the envelope before offer() even returns.
        future = item.future
        self.metrics.record_submit()
        outcome = self.queue.offer(item)
        if outcome == ADMITTED:
            return future
        code = _OUTCOME_CODES[outcome]
        if outcome in (REJECTED, TIMED_OUT):
            self.metrics.record_rejection(timed_out=outcome == TIMED_OUT)
        latency = item.latency()
        future.set_result(
            ErrorReply(
                request_id=request.request_id,
                client_id=request.client_id,
                code=code,
                message=f"admission {outcome}",
                latency_s=latency,
            )
        )
        self._envelopes.release(item)
        self.metrics.record_error(code, latency)
        return future

    def call(self, request, timeout: Optional[float] = None):
        """Blocking convenience: submit, wait, raise on error replies."""
        reply = self.submit(request).result(timeout=timeout)
        if not reply.ok:
            raise reply.to_exception()
        return reply

    def _complete_shutdown(self, item: PendingRequest) -> None:
        latency = item.latency()
        item.future.set_result(
            ErrorReply(
                request_id=item.request.request_id,
                client_id=item.request.client_id,
                code=ERROR_SHUTDOWN,
                message="service stopped before evaluation",
                latency_s=latency,
            )
        )
        self.metrics.record_error(ERROR_SHUTDOWN, latency)
