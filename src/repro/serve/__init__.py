"""Request/reply localization-and-tracking service (micro-batched).

Many logical clients submit :class:`LocalizeRequest` /
:class:`TrackStepRequest` work to one :class:`LocalizationService`,
which shares the deployment's flux model, fingerprint map, and engine
pool across all of them. Admission is bounded and client-fair
(:class:`AdmissionQueue`), evaluation is micro-batched with fused
engine kernel calls (:class:`MicroBatchScheduler`), operations are
observable (:class:`ServerMetrics`, :class:`MetricsServer`), and
shutdown drains then checkpoints every tracking session.
"""

from repro.serve.admission import (
    ADMITTED,
    CLOSED,
    REJECTED,
    TIMED_OUT,
    AdmissionQueue,
    EnvelopePool,
    PendingRequest,
)
from repro.serve.metrics import MetricsServer, ServerMetrics
from repro.serve.requests import (
    ERROR_ADMISSION_TIMEOUT,
    ERROR_DEADLINE_EXPIRED,
    ERROR_INTERNAL,
    ERROR_REJECTED,
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_SESSION,
    ERROR_WORKER_CRASHED,
    ErrorReply,
    LocalizeReply,
    LocalizeRequest,
    TrackStepReply,
    TrackStepRequest,
)
from repro.serve.scheduler import (
    AdaptiveBatchController,
    BatchArena,
    MicroBatchScheduler,
)
from repro.serve.service import LocalizationService

__all__ = [
    "ADMITTED",
    "CLOSED",
    "REJECTED",
    "TIMED_OUT",
    "AdmissionQueue",
    "EnvelopePool",
    "PendingRequest",
    "MetricsServer",
    "ServerMetrics",
    "ERROR_ADMISSION_TIMEOUT",
    "ERROR_DEADLINE_EXPIRED",
    "ERROR_INTERNAL",
    "ERROR_REJECTED",
    "ERROR_SHUTDOWN",
    "ERROR_UNKNOWN_SESSION",
    "ERROR_WORKER_CRASHED",
    "ErrorReply",
    "LocalizeReply",
    "LocalizeRequest",
    "TrackStepReply",
    "TrackStepRequest",
    "AdaptiveBatchController",
    "BatchArena",
    "MicroBatchScheduler",
    "LocalizationService",
]
