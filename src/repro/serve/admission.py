"""Admission control: the bounded, client-fair front door of the service.

The queue holds :class:`PendingRequest` envelopes (request + reply
future + deadline) in *per-client* FIFO lanes and hands them to the
scheduler in round-robin client order, so a flooding client cannot
starve the others — it can only fill its own lane. Overload behavior is
a policy choice made at construction:

``reject``
    A full queue (or a full per-client lane) refuses the request
    immediately; the caller answers it with a typed
    ``admission_rejected`` error reply. Predictable latency, bounded
    memory, the client decides whether to retry.
``block``
    ``offer`` waits (bounded by ``block_timeout_s``) for the scheduler
    to make room. Nothing is refused while the service keeps up; a
    timeout becomes a typed ``admission_timeout`` error reply.

Deadlines are enforced at drain time: :meth:`take` purges lapsed
entries into its ``expired`` result instead of handing them to the
scheduler, and the service completes them with ``deadline_expired``
error replies — stale work never reaches the solver and is never
silently dropped. The scheduler re-checks expiry again at dispatch
time, so a request whose deadline lapses *between* drain and solve is
also answered ``deadline_expired`` rather than solved late.

Deadline arithmetic (wrap/expired/latency and the drain-time purge)
reads the injectable faults clock (:mod:`repro.faults.clock`), which
makes the drain/dispatch race testable with a :class:`~repro.faults.
FakeClock`; the condition-variable waits below deliberately stay on
real ``time.monotonic`` so a fake clock can never hang a thread.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults import clock as _clock

#: ``offer`` outcomes.
ADMITTED = "admitted"
REJECTED = "rejected"
TIMED_OUT = "timed_out"
CLOSED = "closed"

_POLICIES = ("reject", "block")


@dataclass
class PendingRequest:
    """Queue envelope: one request awaiting its reply.

    ``expires_at`` is an absolute ``time.monotonic()`` instant derived
    from the request's relative ``deadline_s`` at submission (``None``
    = no deadline).
    """

    request: object
    future: Future
    submitted_at: float
    expires_at: Optional[float] = None
    batch_size: int = field(default=0)

    @classmethod
    def wrap(cls, request, now: Optional[float] = None) -> "PendingRequest":
        now = _clock.monotonic() if now is None else now
        deadline_s = getattr(request, "deadline_s", None)
        expires_at = None if deadline_s is None else now + float(deadline_s)
        return cls(
            request=request, future=Future(), submitted_at=now,
            expires_at=expires_at,
        )

    def expired(self, now: Optional[float] = None) -> bool:
        if self.expires_at is None:
            return False
        return (_clock.monotonic() if now is None else now) >= self.expires_at

    def latency(self, now: Optional[float] = None) -> float:
        return (_clock.monotonic() if now is None else now) - self.submitted_at


class AdmissionQueue:
    """Bounded multi-client FIFO with round-robin fair draining.

    Parameters
    ----------
    capacity:
        Maximum queued requests across all clients.
    policy:
        ``"reject"`` or ``"block"`` (see module docstring).
    block_timeout_s:
        Block-policy only: longest an :meth:`offer` may wait for room.
        ``None`` waits indefinitely (only sensible in tests).
    per_client_limit:
        Optional cap on one client's queued requests. A client at its
        cap is refused (both policies) while other clients are still
        admitted — the fairness backstop against a single flooder.
    eager_single:
        Skip the :meth:`take` batch-fill linger when exactly one
        request is queued. A lone closed-loop client otherwise pays the
        full ``batch_wait`` on *every* request for a batch that never
        fills (the 1-client serving regression); with several requests
        already queued the linger still runs, so fusion under load is
        unaffected. Off by default — opt-in latency policy, not queue
        semantics.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "reject",
        block_timeout_s: Optional[float] = 5.0,
        per_client_limit: Optional[int] = None,
        eager_single: bool = False,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        if block_timeout_s is not None and block_timeout_s <= 0:
            raise ConfigurationError(
                f"block_timeout_s must be positive, got {block_timeout_s}"
            )
        if per_client_limit is not None and per_client_limit < 1:
            raise ConfigurationError(
                f"per_client_limit must be >= 1, got {per_client_limit}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self.per_client_limit = per_client_limit
        self.eager_single = bool(eager_single)
        self._lanes: "OrderedDict[str, Deque[PendingRequest]]" = OrderedDict()
        self._turns: Deque[str] = deque()  # round-robin client order
        self._depth = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return self._depth

    def client_depth(self, client_id: str) -> int:
        with self._cond:
            lane = self._lanes.get(client_id)
            return 0 if lane is None else len(lane)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def offer(self, item: PendingRequest) -> str:
        """Try to admit one envelope; returns an ``offer`` outcome.

        ``REJECTED``/``TIMED_OUT``/``CLOSED`` mean the item was *not*
        enqueued; the caller owns completing its future with the
        matching typed error reply.
        """
        client_id = item.request.client_id
        with self._cond:
            if self._closed:
                return CLOSED
            if (
                self.per_client_limit is not None
                and len(self._lanes.get(client_id, ())) >= self.per_client_limit
            ):
                return REJECTED
            if self._depth >= self.capacity:
                if self.policy == "reject":
                    return REJECTED
                deadline = (
                    None
                    if self.block_timeout_s is None
                    else time.monotonic() + self.block_timeout_s
                )
                while self._depth >= self.capacity and not self._closed:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        return TIMED_OUT
                    self._cond.wait(remaining)
                if self._closed:
                    return CLOSED
                if (
                    self.per_client_limit is not None
                    and len(self._lanes.get(client_id, ()))
                    >= self.per_client_limit
                ):
                    return REJECTED
            lane = self._lanes.get(client_id)
            if lane is None:
                lane = self._lanes[client_id] = deque()
                self._turns.append(client_id)
            lane.append(item)
            self._depth += 1
            self._cond.notify_all()
            return ADMITTED

    # ------------------------------------------------------------------
    def take(
        self,
        max_items: int,
        wait_timeout: Optional[float] = 0.05,
        batch_wait: float = 0.0,
    ) -> Tuple[List[PendingRequest], List[PendingRequest]]:
        """Drain up to ``max_items`` in fair order; purge expired work.

        Micro-batching trigger: block until the queue is non-empty (at
        most ``wait_timeout`` seconds — ``None`` waits indefinitely),
        then linger up to ``batch_wait`` seconds for the batch to fill
        to ``max_items`` before draining. Returns ``(batch, expired)``;
        expired envelopes (deadline lapsed while queued) are removed
        from the queue but *not* part of the batch.

        Fairness: one item per client per turn, clients visited
        round-robin, a client's lane staying FIFO. A drained-empty lane
        leaves the rotation until that client submits again.
        """
        if max_items < 1:
            raise ConfigurationError(
                f"max_items must be >= 1, got {max_items}"
            )
        with self._cond:
            if not self._wait_nonempty(wait_timeout):
                return [], []
            if self.eager_single and self._depth == 1:
                return self._drain_locked(max_items)
            if batch_wait > 0 and self._depth < max_items:
                deadline = time.monotonic() + batch_wait
                while self._depth < max_items and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            return self._drain_locked(max_items)

    def _wait_nonempty(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._depth == 0:
            if self._closed:
                return False
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            self._cond.wait(remaining)
        return True

    def _drain_locked(
        self, max_items: int
    ) -> Tuple[List[PendingRequest], List[PendingRequest]]:
        now = _clock.monotonic()
        batch: List[PendingRequest] = []
        expired: List[PendingRequest] = []
        idle_turns = 0
        while self._depth > 0 and len(batch) < max_items:
            if not self._turns or idle_turns >= len(self._turns):
                break  # defensive: no lane can supply another item
            client_id = self._turns.popleft()
            lane = self._lanes.get(client_id)
            if not lane:
                self._lanes.pop(client_id, None)
                idle_turns += 1
                continue
            idle_turns = 0
            item = lane.popleft()
            self._depth -= 1
            if item.expired(now):
                expired.append(item)
            else:
                batch.append(item)
            if lane:
                self._turns.append(client_id)
            else:
                self._lanes.pop(client_id, None)
        if batch or expired:
            self._cond.notify_all()  # wake blocked producers
        return batch, expired

    # ------------------------------------------------------------------
    def drain_all(self) -> List[PendingRequest]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            items: List[PendingRequest] = []
            while self._depth > 0:
                taken, expired = self._drain_locked(self._depth)
                items.extend(expired)
                items.extend(taken)
            return items

    def close(self) -> None:
        """Refuse new offers and wake every waiter (take and offer)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
