"""Admission control: the bounded, client-fair front door of the service.

The queue holds :class:`PendingRequest` envelopes (request + reply
future + deadline) in *per-client* FIFO lanes and hands them to the
scheduler in round-robin client order, so a flooding client cannot
starve the others — it can only fill its own lane. Overload behavior is
a policy choice made at construction:

``reject``
    A full queue (or a full per-client lane) refuses the request
    immediately; the caller answers it with a typed
    ``admission_rejected`` error reply. Predictable latency, bounded
    memory, the client decides whether to retry.
``block``
    ``offer`` waits (bounded by ``block_timeout_s``) for the scheduler
    to make room. Nothing is refused while the service keeps up; a
    timeout becomes a typed ``admission_timeout`` error reply.

Deadlines are enforced at drain time: :meth:`take` purges lapsed
entries into its ``expired`` result instead of handing them to the
scheduler, and the service completes them with ``deadline_expired``
error replies — stale work never reaches the solver and is never
silently dropped. The scheduler re-checks expiry again at dispatch
time, so a request whose deadline lapses *between* drain and solve is
also answered ``deadline_expired`` rather than solved late. When any
queued request carries a deadline, draining is additionally
*SLO-aware*: lane heads whose remaining slack is inside
``urgent_slack_s`` are pulled earliest-deadline-first ahead of the
round-robin rotation (lane order stays FIFO, so per-session step
order is preserved).

Deadline arithmetic (wrap/expired/latency and the drain-time purge)
reads the injectable faults clock (:mod:`repro.faults.clock`), which
makes the drain/dispatch race testable with a :class:`~repro.faults.
FakeClock`; the condition-variable waits below deliberately stay on
real ``time.monotonic`` so a fake clock can never hang a thread.

The micro-batch linger inside :meth:`take` comes in two flavors: the
fixed ``batch_wait`` window, and — when the scheduler passes its
:class:`~repro.serve.scheduler.AdaptiveBatchController` — an adaptive
window sized from the controller's arrival-rate EWMA and the
instantaneous queue depth (see the controller's docstring for the
policy). Either way every wait is a condition-variable wait: a
non-positive ``wait_timeout`` is clamped to a small floor instead of
degenerating into a hot poll of the scheduler loop.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults import clock as _clock

#: ``offer`` outcomes.
ADMITTED = "admitted"
REJECTED = "rejected"
TIMED_OUT = "timed_out"
CLOSED = "closed"

_POLICIES = ("reject", "block")

#: Floor of the empty-queue condition-variable wait. A ``wait_timeout``
#: (or scheduler ``idle_wait_s``) of zero used to make :meth:`take`
#: return immediately on an empty queue, turning the scheduler loop
#: into a 100%-CPU poll; clamping to this floor keeps the wait a real
#: cv sleep while staying far below any reply-latency budget.
MIN_IDLE_WAIT_S = 0.001

#: ``dataclass(slots=True)`` needs Python 3.10; on 3.9 the envelope
#: keeps a ``__dict__`` — identical semantics, only the memory win of
#: slotting is lost.
_DC_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_DC_SLOTS)
class PendingRequest:
    """Queue envelope: one request awaiting its reply.

    ``expires_at`` is an absolute ``time.monotonic()`` instant derived
    from the request's relative ``deadline_s`` at submission (``None``
    = no deadline). Slotted (no per-instance ``__dict__``) and
    recyclable through :class:`EnvelopePool` — envelopes are pure
    scheduler-internal plumbing, so the allocation churn of one object
    per request is a fixed cost worth pooling on the hot path.
    """

    request: object
    future: Future
    submitted_at: float
    expires_at: Optional[float] = None
    batch_size: int = field(default=0)
    #: Per-stage trace stamps ``[(stage, monotonic_t), ...]`` appended
    #: by the scheduler as the request crosses admission → fuse →
    #: solve → reply. ``None`` until the first stamp; reset on reuse.
    stages: Optional[list] = field(default=None)

    @classmethod
    def wrap(cls, request, now: Optional[float] = None) -> "PendingRequest":
        now = _clock.monotonic() if now is None else now
        deadline_s = getattr(request, "deadline_s", None)
        expires_at = None if deadline_s is None else now + float(deadline_s)
        return cls(
            request=request, future=Future(), submitted_at=now,
            expires_at=expires_at,
        )

    def rewrap(self, request, now: Optional[float] = None) -> "PendingRequest":
        """Reset this envelope in place for a new request (pool reuse)."""
        now = _clock.monotonic() if now is None else now
        deadline_s = getattr(request, "deadline_s", None)
        self.request = request
        self.future = Future()  # futures escape to callers; never reused
        self.submitted_at = now
        self.expires_at = (
            None if deadline_s is None else now + float(deadline_s)
        )
        self.batch_size = 0
        self.stages = None
        return self

    def stamp(self, stage: str, now: Optional[float] = None) -> None:
        """Mark the *end* of ``stage`` at ``now`` (monotonic seconds)."""
        if self.stages is None:
            self.stages = []
        self.stages.append(
            (stage, _clock.monotonic() if now is None else now)
        )

    def stage_durations(
        self, now: Optional[float] = None
    ) -> List[Tuple[str, float]]:
        """``[(stage, seconds), ...]`` from the stamps, in stamp order.

        Each stage's duration runs from the previous stamp (or
        ``submitted_at`` for the first) to its own stamp; a final
        ``reply`` stage is synthesized at ``now`` when the last stamp
        is not already a reply, so the durations always sum to the
        request's total latency.
        """
        now = _clock.monotonic() if now is None else now
        out: List[Tuple[str, float]] = []
        previous = self.submitted_at
        stamps = self.stages or []
        for stage, at in stamps:
            out.append((stage, at - previous))
            previous = at
        if not stamps or stamps[-1][0] != "reply":
            out.append(("reply", now - previous))
        return out

    def expired(self, now: Optional[float] = None) -> bool:
        if self.expires_at is None:
            return False
        return (_clock.monotonic() if now is None else now) >= self.expires_at

    def latency(self, now: Optional[float] = None) -> float:
        return (_clock.monotonic() if now is None else now) - self.submitted_at


class EnvelopePool:
    """Freelist of :class:`PendingRequest` envelopes.

    ``acquire`` is called from many client threads, ``release`` from
    the scheduler thread once the envelope's future has resolved; the
    underlying :class:`collections.deque` makes both lock-free. The
    reply :class:`~concurrent.futures.Future` is *never* reused — it
    escapes to the submitting client — only the envelope shell is.
    Release is owned by whoever drained the envelope from the queue
    (or refused it admission); an envelope must not be touched after
    it is released.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._free: Deque[PendingRequest] = deque()
        self.reuses = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, request) -> PendingRequest:
        try:
            item = self._free.pop()
        except IndexError:
            self.allocations += 1
            return PendingRequest.wrap(request)
        self.reuses += 1
        return item.rewrap(request)

    def release(self, item: PendingRequest) -> None:
        """Return a completed envelope to the freelist.

        The request/future references are dropped so a pooled shell
        never pins a reply (or its numpy payload) alive.
        """
        item.request = None
        item.future = None
        item.expires_at = None
        if len(self._free) < self.capacity:
            self._free.append(item)


class AdmissionQueue:
    """Bounded multi-client FIFO with round-robin fair draining.

    Parameters
    ----------
    capacity:
        Maximum queued requests across all clients.
    policy:
        ``"reject"`` or ``"block"`` (see module docstring).
    block_timeout_s:
        Block-policy only: longest an :meth:`offer` may wait for room.
        ``None`` waits indefinitely (only sensible in tests).
    per_client_limit:
        Optional cap on one client's queued requests. A client at its
        cap is refused (both policies) while other clients are still
        admitted — the fairness backstop against a single flooder.
    eager_single:
        Skip the :meth:`take` batch-fill linger when exactly one
        request is queued. A lone closed-loop client otherwise pays the
        full ``batch_wait`` on *every* request for a batch that never
        fills (the 1-client serving regression); with several requests
        already queued the linger still runs, so fusion under load is
        unaffected. Off by default — opt-in latency policy, not queue
        semantics. Superseded by the adaptive controller's depth-k
        bypass when one is passed to :meth:`take`.
    urgent_slack_s:
        Deadline slack below which a queued request is *urgent*: the
        drain pulls urgent lane heads earliest-deadline-first before
        the fair rotation runs (SLO-aware ordering). Only consulted
        while deadline-carrying requests are queued.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "reject",
        block_timeout_s: Optional[float] = 5.0,
        per_client_limit: Optional[int] = None,
        eager_single: bool = False,
        urgent_slack_s: float = 0.01,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        if block_timeout_s is not None and block_timeout_s <= 0:
            raise ConfigurationError(
                f"block_timeout_s must be positive, got {block_timeout_s}"
            )
        if per_client_limit is not None and per_client_limit < 1:
            raise ConfigurationError(
                f"per_client_limit must be >= 1, got {per_client_limit}"
            )
        if urgent_slack_s < 0:
            raise ConfigurationError(
                f"urgent_slack_s must be >= 0, got {urgent_slack_s}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self.per_client_limit = per_client_limit
        self.eager_single = bool(eager_single)
        self.urgent_slack_s = float(urgent_slack_s)
        #: Optional AdaptiveBatchController observing arrivals; set by
        #: the scheduler that owns this queue (duck-typed, no import).
        self.controller = None
        self._lanes: "OrderedDict[str, Deque[PendingRequest]]" = OrderedDict()
        self._turns: Deque[str] = deque()  # round-robin client order
        self._depth = 0
        self._deadline_count = 0  # queued items carrying a deadline
        self._last_arrival = 0.0  # time.monotonic() of the newest offer
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return self._depth

    def depth_hint(self) -> int:
        """Lock-free read of the depth gauge.

        One int read under the GIL — the scheduler samples this for
        metrics after a drain instead of paying another lock hop; it
        may be momentarily stale, which is fine for a gauge.
        """
        return self._depth

    def client_depth(self, client_id: str) -> int:
        with self._cond:
            lane = self._lanes.get(client_id)
            return 0 if lane is None else len(lane)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def offer(self, item: PendingRequest) -> str:
        """Try to admit one envelope; returns an ``offer`` outcome.

        ``REJECTED``/``TIMED_OUT``/``CLOSED`` mean the item was *not*
        enqueued; the caller owns completing its future with the
        matching typed error reply (and releasing the envelope).
        """
        client_id = item.request.client_id
        with self._cond:
            if self._closed:
                return CLOSED
            if (
                self.per_client_limit is not None
                and len(self._lanes.get(client_id, ())) >= self.per_client_limit
            ):
                return REJECTED
            if self._depth >= self.capacity:
                if self.policy == "reject":
                    return REJECTED
                deadline = (
                    None
                    if self.block_timeout_s is None
                    else time.monotonic() + self.block_timeout_s
                )
                while self._depth >= self.capacity and not self._closed:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        return TIMED_OUT
                    self._cond.wait(remaining)
                if self._closed:
                    return CLOSED
                if (
                    self.per_client_limit is not None
                    and len(self._lanes.get(client_id, ()))
                    >= self.per_client_limit
                ):
                    return REJECTED
            lane = self._lanes.get(client_id)
            if lane is None:
                lane = self._lanes[client_id] = deque()
                self._turns.append(client_id)
            lane.append(item)
            self._depth += 1
            if item.expires_at is not None:
                self._deadline_count += 1
            now = time.monotonic()
            self._last_arrival = now
            controller = self.controller
            if controller is not None:
                controller.observe_arrival(now)
            self._cond.notify_all()
            return ADMITTED

    # ------------------------------------------------------------------
    def take(
        self,
        max_items: int,
        wait_timeout: Optional[float] = 0.05,
        batch_wait: float = 0.0,
        controller=None,
    ) -> Tuple[List[PendingRequest], List[PendingRequest]]:
        """Drain up to ``max_items`` in fair order; purge expired work.

        Micro-batching trigger: block until the queue is non-empty (at
        most ``wait_timeout`` seconds — ``None`` waits indefinitely,
        non-positive values clamp to :data:`MIN_IDLE_WAIT_S` so the
        caller's loop can never hot-poll), then linger for the batch to
        fill to ``max_items`` before draining. The linger window is
        ``batch_wait`` seconds, or — when an adaptive ``controller`` is
        passed — whatever the controller sizes from its arrival-rate
        EWMA and the current depth (including a zero window: the
        depth-k fusion bypass). Returns ``(batch, expired)``; expired
        envelopes (deadline lapsed while queued) are removed from the
        queue but *not* part of the batch.

        Fairness: one item per client per turn, clients visited
        round-robin, a client's lane staying FIFO. A drained-empty lane
        leaves the rotation until that client submits again. Urgent
        deadlines pre-empt the rotation (see ``urgent_slack_s``).
        """
        if max_items < 1:
            raise ConfigurationError(
                f"max_items must be >= 1, got {max_items}"
            )
        if wait_timeout is not None and wait_timeout <= 0:
            wait_timeout = MIN_IDLE_WAIT_S
        with self._cond:
            if not self._wait_nonempty(wait_timeout):
                return [], []
            if controller is not None and controller.adaptive:
                self._linger_adaptive(max_items, controller)
            elif batch_wait > 0 and self._depth < max_items:
                if not (self.eager_single and self._depth == 1):
                    deadline = time.monotonic() + batch_wait
                    while self._depth < max_items and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
            batch, expired = self._drain_locked(max_items)
            if controller is not None:
                controller.observe_drain(len(batch) + len(expired))
            return batch, expired

    def _linger_adaptive(self, max_items: int, controller) -> None:
        """Adaptive batch-fill linger (lock held).

        The controller picks a hard window from depth/EWMA/SLO slack;
        inside it we drain early as soon as the arrival flow *pauses*
        for a settle gap — so a burst is collected whole without ever
        paying dead linger time after it ends.
        """
        if self._depth >= max_items or controller.should_bypass(self._depth):
            return
        now = time.monotonic()
        oldest_age = now - self._oldest_submitted_locked(now)
        window = controller.linger_window_s(self._depth, oldest_age, max_items)
        if window <= 0:
            return
        deadline = now + window
        while self._depth < max_items and not self._closed:
            now = time.monotonic()
            settle_at = self._last_arrival + controller.settle_s()
            remaining = min(deadline, settle_at) - now
            if remaining <= 0:
                break
            self._cond.wait(remaining)

    def _oldest_submitted_locked(self, now: float) -> float:
        """Earliest ``submitted_at`` among lane heads (lanes are FIFO)."""
        oldest = now
        for lane in self._lanes.values():
            if lane and lane[0].submitted_at < oldest:
                oldest = lane[0].submitted_at
        return oldest

    def _wait_nonempty(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._depth == 0:
            if self._closed:
                return False
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            self._cond.wait(remaining)
        return True

    def _pop_from_lane(self, client_id: str, lane) -> PendingRequest:
        """Pop a lane head, keeping depth/deadline/rotation bookkeeping."""
        item = lane.popleft()
        self._depth -= 1
        if item.expires_at is not None:
            self._deadline_count -= 1
        if not lane:
            self._lanes.pop(client_id, None)
            try:
                self._turns.remove(client_id)
            except ValueError:
                pass
        return item

    def _drain_urgent(
        self,
        now: float,
        max_items: int,
        batch: List[PendingRequest],
        expired: List[PendingRequest],
    ) -> None:
        """Pull urgent lane heads earliest-deadline-first (lock held).

        Only lane *heads* are eligible, so per-client (and per-session)
        FIFO order is preserved; an urgent item buried behind its own
        lane mates waits its turn like everyone else.
        """
        horizon = now + self.urgent_slack_s
        while self._deadline_count > 0 and len(batch) < max_items:
            best_client = None
            best_lane = None
            best_expiry = horizon
            for client_id, lane in self._lanes.items():
                head = lane[0]
                if head.expires_at is not None and head.expires_at <= best_expiry:
                    best_client, best_lane = client_id, lane
                    best_expiry = head.expires_at
            if best_lane is None:
                return
            item = self._pop_from_lane(best_client, best_lane)
            if item.expired(now):
                expired.append(item)
            else:
                batch.append(item)

    def _drain_locked(
        self, max_items: int
    ) -> Tuple[List[PendingRequest], List[PendingRequest]]:
        now = _clock.monotonic()
        batch: List[PendingRequest] = []
        expired: List[PendingRequest] = []
        if self._deadline_count > 0:
            self._drain_urgent(now, max_items, batch, expired)
        idle_turns = 0
        while self._depth > 0 and len(batch) < max_items:
            if not self._turns or idle_turns >= len(self._turns):
                break  # defensive: no lane can supply another item
            client_id = self._turns.popleft()
            lane = self._lanes.get(client_id)
            if not lane:
                self._lanes.pop(client_id, None)
                idle_turns += 1
                continue
            idle_turns = 0
            item = lane.popleft()
            self._depth -= 1
            if item.expires_at is not None:
                self._deadline_count -= 1
            if item.expired(now):
                expired.append(item)
            else:
                batch.append(item)
            if lane:
                self._turns.append(client_id)
            else:
                self._lanes.pop(client_id, None)
        if batch or expired:
            self._cond.notify_all()  # wake blocked producers
        return batch, expired

    # ------------------------------------------------------------------
    def drain_all(self) -> List[PendingRequest]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            items: List[PendingRequest] = []
            while self._depth > 0:
                taken, expired = self._drain_locked(self._depth)
                items.extend(expired)
                items.extend(taken)
            return items

    def close(self) -> None:
        """Refuse new offers and wake every waiter (take and offer)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
