"""Graceful backend degradation for the serve scheduler.

The scheduler normally evaluates fused batches through a parallel
:class:`~repro.engine.executor.Engine` (thread or process backend).
When that backend starts failing persistently — a crashing fork worker,
a wedged pool — retries alone cannot help: the fault follows the
backend. :class:`BackendGovernor` implements the recovery ladder the
ISSUE calls graceful degradation:

1. Count *consecutive* backend faults; any success resets the streak.
2. At ``fault_threshold`` consecutive faults, lease the backend out:
   :meth:`current_engine` returns ``None`` (= serial evaluation, always
   available, bitwise-identical in float64) for ``cooldown_s`` seconds.
3. After the cool-down, re-escalate: hand the parallel backend back and
   give it a fresh streak budget.

Time is read from the injectable faults clock, so tests walk the
cool-down with a :class:`~repro.faults.FakeClock` instead of sleeping.
The governor itself is lock-protected and callback-driven —
``on_fallback``/``on_reescalate`` are where the scheduler records
``ServerMetrics`` counters — so it stays free of serve imports and is
unit-testable in isolation.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.engine.executor import Engine
from repro.errors import ConfigurationError
from repro.faults import clock as _clock


class BackendGovernor:
    """Serial-fallback state machine for one scheduler's engine.

    Parameters
    ----------
    engine:
        The parallel backend being governed. ``None`` makes the
        governor a no-op that always yields ``None`` (serial).
    fault_threshold:
        Consecutive backend faults that trigger the fallback.
    cooldown_s:
        How long (injected-clock seconds) the backend stays leased out
        before re-escalation.
    on_fallback / on_reescalate:
        Zero-argument observers fired on each transition (metrics
        hooks); exceptions from them propagate — they are trusted code.
    """

    def __init__(
        self,
        engine: Optional[Engine],
        fault_threshold: int = 3,
        cooldown_s: float = 5.0,
        on_fallback: Optional[Callable[[], None]] = None,
        on_reescalate: Optional[Callable[[], None]] = None,
    ):
        if fault_threshold < 1:
            raise ConfigurationError(
                f"fault_threshold must be >= 1, got {fault_threshold}"
            )
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"cooldown_s must be positive, got {cooldown_s}"
            )
        self.engine = engine
        self.fault_threshold = int(fault_threshold)
        self.cooldown_s = float(cooldown_s)
        self._on_fallback = on_fallback
        self._on_reescalate = on_reescalate
        self._lock = threading.Lock()
        self._streak = 0
        self._degraded_until: Optional[float] = None

    # ------------------------------------------------------------------
    def current_engine(self) -> Optional[Engine]:
        """The engine the next batch should use (``None`` = serial).

        Re-escalates as a side effect once the cool-down has elapsed.
        """
        with self._lock:
            if self.engine is None:
                return None
            if self._degraded_until is None:
                return self.engine
            if _clock.monotonic() < self._degraded_until:
                return None
            # Cool-down over: restore the backend with a clean streak.
            self._degraded_until = None
            self._streak = 0
            callback = self._on_reescalate
        if callback is not None:
            callback()
        return self.engine

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded_until is not None

    @property
    def streak(self) -> int:
        with self._lock:
            return self._streak

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A batch evaluated cleanly on the parallel backend."""
        with self._lock:
            if self._degraded_until is None:
                self._streak = 0

    def record_fault(self) -> bool:
        """One backend fault; returns True if this one triggered fallback."""
        with self._lock:
            if self.engine is None or self._degraded_until is not None:
                return False
            self._streak += 1
            if self._streak < self.fault_threshold:
                return False
            self._degraded_until = _clock.monotonic() + self.cooldown_s
            callback = self._on_fallback
        if callback is not None:
            callback()
        return True
