"""Request and reply types of the batched localization service.

Requests are immutable, slotted value objects: a logical client names itself
(``client_id`` — the admission layer's fairness unit), tags the request
(``request_id`` — the reply correlation key), and optionally attaches a
relative deadline. Replies are equally plain: one success type per
request type, plus :class:`ErrorReply`, the *typed error reply* every
failed request receives — rejected, expired, or crashed work is always
answered, never silently dropped.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional, Type

import numpy as np

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExpired,
    ReproError,
    ServeError,
    WorkerCrashed,
)
from repro.fingerprint.results import LocalizationResult
from repro.traffic.measurement import FluxObservation

#: Error-reply codes (``ErrorReply.code``) and the exception type each
#: maps back to via :meth:`ErrorReply.to_exception`.
ERROR_REJECTED = "admission_rejected"
ERROR_ADMISSION_TIMEOUT = "admission_timeout"
ERROR_DEADLINE_EXPIRED = "deadline_expired"
ERROR_SHUTDOWN = "shutdown"
ERROR_UNKNOWN_SESSION = "unknown_session"
ERROR_INTERNAL = "internal"
ERROR_WORKER_CRASHED = "worker_crashed"

#: ``dataclass(slots=True)`` needs Python 3.10; on 3.9 the classes
#: simply keep a ``__dict__`` — identical semantics, only the
#: per-instance memory/attribute-lookup win is lost.
_DC_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

_ERROR_TYPES = {
    ERROR_REJECTED: AdmissionError,
    ERROR_ADMISSION_TIMEOUT: AdmissionError,
    ERROR_DEADLINE_EXPIRED: DeadlineExpired,
    ERROR_SHUTDOWN: AdmissionError,
    ERROR_UNKNOWN_SESSION: ServeError,
    ERROR_INTERNAL: ServeError,
    # Fleet-level: the owning worker process died and redelivery to its
    # replacement kept failing past the redelivery limit.
    ERROR_WORKER_CRASHED: WorkerCrashed,
}


def _require_identity(request_id: str, client_id: str) -> None:
    if not request_id:
        raise ConfigurationError("request_id must be non-empty")
    if not client_id:
        raise ConfigurationError("client_id must be non-empty")


def _require_deadline(deadline_s: Optional[float]) -> None:
    if deadline_s is not None and not deadline_s >= 0:
        raise ConfigurationError(
            f"deadline_s must be >= 0 seconds, got {deadline_s}"
        )


@dataclass(frozen=True, **_DC_SLOTS)
class LocalizeRequest:
    """One instant-localization job: K user positions from one window.

    Attributes
    ----------
    request_id / client_id:
        Reply correlation key and fairness unit (see module docstring).
    observation:
        The flux window to fit, over the service's sniffer set.
    user_count .. seed_top_k:
        The :meth:`repro.fingerprint.NLSLocalizer.localize` search
        budget knobs.
    seed:
        Integer seed of the request's private RNG streams. Identical
        requests (same seed, same observation, same knobs) produce
        bitwise-identical replies whether they were solved alone or
        inside a micro-batch — the scheduler's fused paths are all
        row-local.
    use_map:
        Seed candidate pools from the service's fingerprint map when it
        has one (ignored otherwise).
    deadline_s:
        Relative deadline in seconds from submission. Work still queued
        when it lapses is answered with a ``deadline_expired``
        :class:`ErrorReply`.
    span_id:
        Optional tracing span stamped by whoever fronted this request
        (the network gateway); threaded through the scheduler into the
        per-stage latency decomposition and the trace ring. ``None``
        falls back to ``request_id`` as the span key.
    """

    request_id: str
    client_id: str
    observation: FluxObservation
    user_count: int = 1
    candidate_count: int = 512
    top_m: int = 10
    restarts: int = 1
    sweeps: int = 4
    seed: int = 0
    seed_top_k: int = 32
    use_map: bool = True
    deadline_s: Optional[float] = None
    span_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require_identity(self.request_id, self.client_id)
        _require_deadline(self.deadline_s)
        for name in ("user_count", "candidate_count", "top_m", "restarts",
                     "sweeps", "seed_top_k"):
            value = getattr(self, name)
            if int(value) < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if not isinstance(self.observation, FluxObservation):
            raise ConfigurationError(
                f"observation must be a FluxObservation, "
                f"got {type(self.observation).__name__}"
            )


@dataclass(frozen=True, **_DC_SLOTS)
class TrackStepRequest:
    """One tracking-session step: feed a window to a service session.

    Within one ``session_id`` the scheduler preserves submission order
    (FIFO), so a client streaming windows through the service sees the
    same tracker trajectory as a local
    :class:`repro.stream.TrackingSession` loop.
    """

    request_id: str
    client_id: str
    session_id: str
    observation: FluxObservation
    deadline_s: Optional[float] = None
    span_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require_identity(self.request_id, self.client_id)
        _require_deadline(self.deadline_s)
        if not self.session_id:
            raise ConfigurationError("session_id must be non-empty")


@dataclass(frozen=True, **_DC_SLOTS)
class LocalizeReply:
    """Successful localization: the top-``top_m`` fitted compositions."""

    request_id: str
    client_id: str
    result: LocalizationResult
    latency_s: float
    batch_size: int

    @property
    def ok(self) -> bool:
        return True

    def estimates(self) -> np.ndarray:
        """Best composition's ``(K, 2)`` position estimates."""
        return self.result.position_estimates()


@dataclass(frozen=True, **_DC_SLOTS)
class TrackStepReply:
    """Tracking-step outcome: the step, or the session's skip reason.

    A *skipped* window (out-of-order, arity mismatch, …) is a normal
    service-level success — the session counted it and kept its state —
    so it arrives as a reply with ``step=None`` and the skip reason,
    not as an :class:`ErrorReply`.
    """

    request_id: str
    client_id: str
    session_id: str
    step: Optional[object]  # repro.smc.tracker.TrackerStep
    skip_reason: Optional[str]
    estimates: np.ndarray
    latency_s: float
    batch_size: int

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True, **_DC_SLOTS)
class ErrorReply:
    """Typed error reply: every failed request gets exactly one.

    ``code`` is one of the module-level ``ERROR_*`` constants; it maps
    to a :class:`~repro.errors.ReproError` subclass via
    :meth:`to_exception` for callers that prefer raising.
    """

    request_id: str
    client_id: str
    code: str
    message: str = ""
    latency_s: float = field(default=float("nan"))

    def __post_init__(self) -> None:
        if self.code not in _ERROR_TYPES:
            raise ConfigurationError(
                f"unknown error code {self.code!r}; "
                f"expected one of {sorted(_ERROR_TYPES)}"
            )

    @property
    def ok(self) -> bool:
        return False

    @property
    def exception_type(self) -> Type[ReproError]:
        return _ERROR_TYPES[self.code]

    def to_exception(self) -> ReproError:
        detail = f": {self.message}" if self.message else ""
        return self.exception_type(
            f"request {self.request_id!r} ({self.code}){detail}"
        )
