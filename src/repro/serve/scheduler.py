"""Micro-batching scheduler: fused evaluation of coalesced requests.

The scheduler thread drains the admission queue in micro-batches (the
trigger is *max batch size or max wait, whichever first*) and answers
every drained envelope exactly once. The point of batching on a
localization service is not thread parallelism — it is **fusion**: the
geometry-kernel evaluation that dominates a localization request is a
row-local map over candidate positions, so the candidate pools of all
requests in a batch can be concatenated and evaluated in *one* engine
kernels call, amortizing the per-call dispatch, validation, and chunk
setup that a request paid on its own. Single-user solves fuse the same
way: the per-candidate theta/objective math is one einsum row reduction,
so a batch of K=1 requests becomes one stacked row sweep.

Two mechanisms keep batching from ever costing latency:

* :class:`AdaptiveBatchController` sizes the linger window from an
  EWMA of the inter-arrival gap and the instantaneous queue depth
  instead of a fixed ``max_wait_s``: light traffic bypasses the linger
  entirely (the depth-k generalization of the old ``eager_single``
  flag), a burst is collected until arrivals *settle* rather than for
  a fixed window, and an optional ``target_p95_s`` SLO caps how long
  the oldest queued request may age before dispatch. The controller
  only decides *when* to drain — batch composition never changes what
  a reply contains (see the determinism contract below), so the
  heuristic is free to be wrong without ever being incorrect.
* :class:`BatchArena` owns the per-batch staging storage — fused
  kernel rows, stitched seed blocks, the K=1 solve's kernel/target/
  residual buffers — as named flat buffers grown geometrically and
  reused across batches, replacing the per-batch ``np.concatenate``
  chains that used to allocate on the hot path.

Determinism contract (the acceptance bar of this layer): a request's
reply is bitwise-identical (float64) whether it was solved alone or
inside any micro-batch, because

* each request's candidate pools are drawn from its **own** seeded RNG
  streams (``np.random.SeedSequence(seed).spawn(2)`` — one stream for
  pool draws, one for the descent search), never from a shared
  generator whose consumption order would depend on batch composition;
* every fused operation is **row-local** — geometry kernels are
  per-(sink, sniffer) pairs chunked over rows, and the fused K=1 solve
  uses per-row einsum reductions — so the values computed for one
  request's rows are independent of which other rows share the call;
* sniffer dropout (NaN readings) restricts a request to a column
  subset, and the geometry kernel of a (sink, sniffer) pair does not
  depend on the other sniffers, so slicing the full-set kernels equals
  computing on the restricted model;
* arena staging only changes *where* rows live, never their values:
  every replaced ``np.concatenate`` becomes slice assignments into a
  preallocated buffer, and every replaced expression becomes the same
  ufunc sequence with ``out=`` — identical float64 bits either way.

Per-request dispatch is literally this same scheduler with
``max_batch=1`` — one code path, two batch sizes — which is what makes
the batched-vs-unbatched identity trivially auditable.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, FaultInjected, RetriesExhausted
from repro.faults import clock as _clock
from repro.faults.plan import should_fire
from repro.faults.retry import TRANSIENT_ERRORS, call_with_retry
from repro.fingerprint.candidates import MapSeededCandidates, UniformCandidates
from repro.fingerprint.nls import (
    NLSLocalizer,
    coordinate_descent,
    fits_from_heap,
    harvest_outcome,
)
from repro.fingerprint.objective import _RIDGE
from repro.fingerprint.results import CompositionFit, LocalizationResult
from repro.serve.admission import AdmissionQueue, EnvelopePool, PendingRequest
from repro.serve.metrics import ServerMetrics
from repro.serve.resilience import BackendGovernor
from repro.serve.requests import (
    ERROR_DEADLINE_EXPIRED,
    ERROR_INTERNAL,
    ERROR_UNKNOWN_SESSION,
    ErrorReply,
    LocalizeReply,
    LocalizeRequest,
    TrackStepReply,
    TrackStepRequest,
)

#: Row block of the fused single-user solve: bounds the ``(block, n)``
#: residual temporary while staying large enough to amortize dispatch.
_SOLVE_BLOCK_ROWS = 8192

_LOG = logging.getLogger(__name__)

#: Failures of the fused evaluation worth a retry / serial fallback
#: (transient set plus an exhausted bounded retry of that set).
_BACKEND_FAULTS = TRANSIENT_ERRORS + (RetriesExhausted,)

#: Inter-arrival gaps above this are idle time, not traffic, and are
#: excluded from the controller's rate EWMA (a client coming back from
#: a coffee break should not convince the controller traffic is slow
#: forever — the EWMA resumes from live gaps).
_GAP_CLAMP_S = 1.0


class AdaptiveBatchController:
    """Sizes the micro-batch linger window from observed traffic.

    State (all updated under the admission queue's lock):

    ``gap_ewma_s``
        EWMA of the inter-arrival gap, fed by :meth:`observe_arrival`
        from the queue's ``offer`` path. Gaps above ``1s`` are treated
        as idle time and skipped. Seeded with ``max_wait_s`` — the
        fixed window is the prior, live traffic replaces it within a
        few arrivals.
    ``batch_ewma``
        EWMA of the drained batch size, fed by :meth:`observe_drain`.
        This is what generalizes ``eager_single`` to depth-k without a
        closed-loop trap: a lone client's service-time gap can look
        "fast enough to linger for", but its drains keep coming back
        size 1, so the batch EWMA keeps the bypass engaged; under real
        concurrency the drains grow and the bypass releases itself.

    Decision (:meth:`linger_window_s`): if both the current depth and
    the batch EWMA sit below ``fusion_min_depth``, bypass the linger
    entirely (window 0 — dispatch now). Otherwise the hard window is
    the smallest of ``max_wait_s``, the EWMA-predicted time for the
    batch to fill to ``max_items``, and — when ``target_p95_s`` is set
    — the oldest queued request's remaining SLO budget (half the
    target, so queueing never eats the whole latency budget). Inside
    that window the queue drains early once arrivals pause for
    :meth:`settle_s` (a small multiple of the gap EWMA), so a burst is
    collected whole without paying dead linger time after it ends.

    The controller picks *when* to drain, never *what* a reply
    contains; every choice preserves the bitwise-identical-replies
    guarantee by construction.
    """

    __slots__ = (
        "adaptive", "max_wait_s", "fusion_min_depth", "target_p95_s",
        "ewma_alpha", "settle_mult", "settle_floor_s", "gap_ewma_s",
        "batch_ewma", "_last_arrival_s", "bypasses", "windows",
        "window_sum_s", "last_window_s",
    )

    def __init__(
        self,
        max_wait_s: float,
        fusion_min_depth: int = 2,
        target_p95_s: Optional[float] = None,
        ewma_alpha: float = 0.25,
        settle_mult: float = 4.0,
        settle_floor_s: float = 1e-4,
        adaptive: bool = True,
    ):
        if max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {max_wait_s}"
            )
        if fusion_min_depth < 1:
            raise ConfigurationError(
                f"fusion_min_depth must be >= 1, got {fusion_min_depth}"
            )
        if target_p95_s is not None and target_p95_s <= 0:
            raise ConfigurationError(
                f"target_p95_s must be positive, got {target_p95_s}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.adaptive = bool(adaptive)
        self.max_wait_s = float(max_wait_s)
        self.fusion_min_depth = int(fusion_min_depth)
        self.target_p95_s = (
            None if target_p95_s is None else float(target_p95_s)
        )
        self.ewma_alpha = float(ewma_alpha)
        self.settle_mult = float(settle_mult)
        self.settle_floor_s = float(settle_floor_s)
        self.gap_ewma_s = self.max_wait_s
        self.batch_ewma = 1.0
        self._last_arrival_s = 0.0
        self.bypasses = 0
        self.windows = 0
        self.window_sum_s = 0.0
        self.last_window_s = 0.0

    # -- observations (called under the queue lock) --------------------
    def observe_arrival(self, now: float) -> None:
        last = self._last_arrival_s
        self._last_arrival_s = now
        if last > 0.0:
            gap = now - last
            if 0.0 <= gap <= _GAP_CLAMP_S:
                self.gap_ewma_s += self.ewma_alpha * (gap - self.gap_ewma_s)

    def observe_drain(self, drained: int) -> None:
        if drained > 0:
            self.batch_ewma += self.ewma_alpha * (drained - self.batch_ewma)

    # -- decisions ------------------------------------------------------
    def should_bypass(self, depth: int) -> bool:
        """Cheap depth-k bypass check, callable before any linger setup.

        The queue asks this first so the bypass path — the common case
        under light traffic — skips the lane scan and clock read that
        sizing a window needs; it is the same condition
        :meth:`linger_window_s` applies.
        """
        if depth < self.fusion_min_depth and self.batch_ewma < self.fusion_min_depth:
            self.bypasses += 1
            self.last_window_s = 0.0
            return True
        return False

    def settle_s(self) -> float:
        """Arrival pause that ends the linger early (the burst is over)."""
        settle = max(self.settle_mult * self.gap_ewma_s, self.settle_floor_s)
        return min(self.max_wait_s, settle) if self.max_wait_s > 0 else settle

    def linger_window_s(
        self, depth: int, oldest_age_s: float, max_items: int
    ) -> float:
        """Hard linger bound for the current drain (0 = dispatch now)."""
        if depth >= max_items:
            return 0.0
        if (
            depth < self.fusion_min_depth
            and self.batch_ewma < self.fusion_min_depth
        ):
            self.bypasses += 1
            self.last_window_s = 0.0
            return 0.0
        window = min(
            self.max_wait_s, (max_items - depth) * self.gap_ewma_s
        )
        if self.target_p95_s is not None:
            window = min(
                window, max(0.0, 0.5 * self.target_p95_s - oldest_age_s)
            )
        window = max(0.0, window)
        self.windows += 1
        self.window_sum_s += window
        self.last_window_s = window
        return window

    def snapshot(self) -> Dict[str, object]:
        windows = self.windows
        return {
            "adaptive": self.adaptive,
            "fusion_min_depth": self.fusion_min_depth,
            "target_p95_s": self.target_p95_s,
            "gap_ewma_s": self.gap_ewma_s,
            "batch_ewma": self.batch_ewma,
            "bypasses": self.bypasses,
            "windows": windows,
            "last_window_s": self.last_window_s,
            "window_mean_s": (
                self.window_sum_s / windows if windows else 0.0
            ),
        }


class BatchArena:
    """Named, reusable staging buffers for one scheduler's batches.

    ``take(name, shape)`` returns a ``shape``-shaped view into a flat
    buffer kept per name, grown geometrically (power-of-two sizing) so
    steady-state batches hit preallocated storage instead of the
    allocator. Views are valid until the *next* ``take`` of the same
    name — i.e. for exactly one batch cycle — which is safe here
    because the scheduler is single-threaded and nothing derived from
    arena storage escapes into a reply (fits copy their rows out).

    ``hits``/``grows`` count reuse vs (re)allocation and surface in
    the metrics snapshot: a steady ``hits`` climb with flat ``grows``
    is the arena doing its job.
    """

    __slots__ = ("_buffers", "hits", "grows")

    def __init__(self):
        self._buffers: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.grows = 0

    def take(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        if isinstance(shape, int):
            shape = (shape,)
        size = 1
        for dim in shape:
            size *= int(dim)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            capacity = 1 << max(6, (size - 1).bit_length())
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self.grows += 1
        else:
            self.hits += 1
        return buf[:size].reshape(shape)

    def snapshot(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "grows": self.grows,
            "buffers": len(self._buffers),
            "bytes": int(sum(b.nbytes for b in self._buffers.values())),
        }


class _LocalizePlan:
    """One localize request, planned: pools drawn, kernels pending.

    ``pools[r][u]`` is restart ``r``/user ``u``'s ``(N, 2)`` candidate
    pool; ``seed_kernels[r][u]`` its map-cache kernel rows (``None``
    without a map); ``pool_kernels`` is filled by the fused kernel pass
    with the full raw ``(N, n_obs)`` kernels in the same layout.
    """

    __slots__ = (
        "item", "request", "objective", "columns", "pools",
        "seed_kernels", "pool_kernels", "search_seed",
    )

    def __init__(self, item, request, objective, columns, pools,
                 seed_kernels, search_seed):
        self.item = item
        self.request = request
        self.objective = objective
        self.columns = columns
        self.pools = pools
        self.seed_kernels = seed_kernels
        self.pool_kernels: List[List[Optional[np.ndarray]]] = [
            [None] * len(row) for row in pools
        ]
        self.search_seed = search_seed


def _fused_match_eligible(fingerprint_map, request) -> bool:
    """Single-user, map-seeded, no-dropout: one fused match suffices.

    Multi-user peeling is sequential (each match subtracts the prior
    fit) and dropout restricts columns per observation, so those take
    the per-request :meth:`FingerprintMap.peel_matches` path.
    """
    return (
        fingerprint_map is not None
        and isinstance(request, LocalizeRequest)
        and request.use_map
        and request.user_count == 1
        and bool(np.all(np.isfinite(np.asarray(request.observation.values,
                                               dtype=float))))
    )


def fuse_map_matches(
    fingerprint_map, items: Sequence[PendingRequest], workspace=None
) -> Dict[int, object]:
    """Pre-match eligible requests' observations in one fused call.

    Returns ``{id(item): MapMatch}`` for the eligible subset; the plan
    phase consumes these instead of per-request ``peel_matches``. Both
    dispatch modes route through :meth:`FingerprintMap.match_many`
    (batch size 1 in per-request mode), so the fusion never changes a
    reply. ``workspace`` is the caller-owned staging dict forwarded to
    the signature-index batch match (scratch reuse across batches).
    """
    eligible = [
        item for item in items
        if _fused_match_eligible(fingerprint_map, item.request)
    ]
    if not eligible:
        return {}
    values = np.stack(
        [np.asarray(i.request.observation.values, dtype=float)
         for i in eligible]
    )
    ks = [min(i.request.seed_top_k, i.request.candidate_count)
          for i in eligible]
    matches = fingerprint_map.match_many(values, ks, workspace=workspace)
    return {id(item): match for item, match in zip(eligible, matches)}


def plan_localize(
    localizer: NLSLocalizer, fingerprint_map, item: PendingRequest,
    prematch=None,
) -> _LocalizePlan:
    """Draw a request's candidate pools from its private RNG streams.

    Mirrors the map-seeded pool construction of
    :meth:`NLSLocalizer.localize`, except that *all* restarts' pools are
    drawn up front from a dedicated pool stream (the descent search gets
    its own spawned stream), so the kernel evaluation of every pool can
    be fused across the batch without perturbing any request's draws.
    ``prematch`` is the request's :func:`fuse_map_matches` result, when
    it was eligible.
    """
    req = item.request
    pool_seed, search_seed = np.random.SeedSequence(int(req.seed)).spawn(2)
    gen = np.random.default_rng(pool_seed)
    objective = localizer.objective_for(req.observation)

    values = np.asarray(req.observation.values, dtype=float)
    good = np.isfinite(values)
    columns = None if bool(np.all(good)) else np.flatnonzero(good)

    seed_generators: Optional[List[MapSeededCandidates]] = None
    if fingerprint_map is not None and req.use_map:
        if prematch is not None:
            matches = [prematch]
        else:
            matches = fingerprint_map.peel_matches(
                values, req.user_count,
                k=min(req.seed_top_k, req.candidate_count),
            )
        refine = 2.0 * fingerprint_map.resolution
        seed_generators = [
            MapSeededCandidates.from_match(localizer.field, match, refine)
            for match in matches
        ]
    uniform = UniformCandidates(localizer.field)

    pools: List[List[np.ndarray]] = []
    seed_kernels: List[List[Optional[np.ndarray]]] = []
    for _ in range(max(1, req.restarts)):
        row_pools: List[np.ndarray] = []
        row_seeds: List[Optional[np.ndarray]] = []
        for u in range(req.user_count):
            if seed_generators is None:
                row_pools.append(uniform.generate(req.candidate_count, gen))
                row_seeds.append(None)
            else:
                seeded = seed_generators[u]
                pool = seeded.generate(req.candidate_count, gen)
                k = seeded.seed_count(req.candidate_count)
                kernels = fingerprint_map.kernels_for(
                    seeded.seed_indices[:k], columns=columns
                )
                row_pools.append(pool)
                row_seeds.append(np.asarray(kernels, dtype=float))
        pools.append(row_pools)
        seed_kernels.append(row_seeds)
    return _LocalizePlan(
        item=item, request=req, objective=objective, columns=columns,
        pools=pools, seed_kernels=seed_kernels, search_seed=search_seed,
    )


def fuse_pool_kernels(
    model, plans: Sequence[_LocalizePlan], engine=None,
    arena: Optional[BatchArena] = None,
) -> int:
    """Evaluate every plan's non-seed candidate rows in one kernels call.

    Stages the unseeded rows of all pools across all plans into one
    contiguous block, evaluates geometry kernels over the **full**
    sniffer set once, then slices each plan's column subset (dropout)
    and stitches map-seed kernels back in front. Row-locality of the
    kernel makes the split irrelevant to the values; returns the fused
    row count (a metrics signal of how much work one engine call
    amortized).

    With an ``arena``, the stacked sink rows, the fused kernel output
    (written in place via ``geometry_kernels(..., out=)``), and the
    stitched per-plan blocks all live in reused arena storage — the
    same values the old per-batch ``np.concatenate`` chain produced,
    without its allocations. Plans with no seed prefix and no dropout
    keep a zero-copy view into the fused block either way.
    """
    segments: List[Tuple[_LocalizePlan, int, int, int, int]] = []
    total = 0
    for plan in plans:
        for r, row_pools in enumerate(plan.pools):
            for u, pool in enumerate(row_pools):
                seed = plan.seed_kernels[r][u]
                k = 0 if seed is None else seed.shape[0]
                count = pool.shape[0] - k
                if count > 0:
                    segments.append((plan, r, u, k, count))
                    total += count
    fused = None
    if total:
        if should_fire("serve.batch.fuse") is not None:
            raise FaultInjected(
                f"serve.batch.fuse: fused kernel pass over {total} rows failed"
            )
        out = None
        if arena is None:
            stacked = np.concatenate(
                [plan.pools[r][u][k:] for plan, r, u, k, _ in segments],
                axis=0,
            )
        else:
            stacked = arena.take("fuse_sinks", (total, 2))
            offset = 0
            for plan, r, u, k, count in segments:
                stacked[offset:offset + count] = plan.pools[r][u][k:]
                offset += count
            out = arena.take("fuse_kernels", (total, model.node_count))
        fused = model.geometry_kernels(stacked, engine=engine, out=out)

    # Plans with a seed prefix or a dropout column subset need their own
    # (k + count, ncols) block; pack them side by side in one arena
    # buffer (a cursor walk) so their views coexist for the whole batch.
    stitch = None
    if arena is not None:
        stitch_elems = 0
        for plan, _, _, k, count in segments:
            if k > 0 or plan.columns is not None:
                ncols = (
                    model.node_count if plan.columns is None
                    else plan.columns.shape[0]
                )
                stitch_elems += (k + count) * ncols
        stitch = arena.take("stitch_kernels", (stitch_elems,))
    cursor = 0
    offset = 0
    for plan, r, u, k, count in segments:
        block = fused[offset:offset + count]
        offset += count
        seed = plan.seed_kernels[r][u]
        if k == 0 and plan.columns is None:
            plan.pool_kernels[r][u] = block  # zero-copy view
            continue
        if stitch is None:
            if plan.columns is not None:
                block = block[:, plan.columns]
            plan.pool_kernels[r][u] = (
                block if seed is None
                else np.concatenate([seed, block], axis=0)
            )
            continue
        ncols = (
            block.shape[1] if plan.columns is None
            else plan.columns.shape[0]
        )
        dest = stitch[cursor:cursor + (k + count) * ncols].reshape(
            k + count, ncols
        )
        cursor += (k + count) * ncols
        if k:
            dest[:k] = seed
        if plan.columns is None:
            dest[k:] = block
        else:
            np.take(block, plan.columns, axis=1, out=dest[k:])
        plan.pool_kernels[r][u] = dest
    for plan in plans:  # pure-seed pools (candidate_count <= seeds)
        for r, row in enumerate(plan.pool_kernels):
            for u, kern in enumerate(row):
                if kern is None:
                    plan.pool_kernels[r][u] = plan.seed_kernels[r][u]
    return total


def solve_single_user_fused(
    plans: Sequence[_LocalizePlan], arena: Optional[BatchArena] = None
) -> List[LocalizationResult]:
    """Solve a group of K=1 plans (equal sniffer arity) in one row sweep.

    The single-user candidate solve is the scalar normal equation
    ``theta = <k, t> / (<k, k> + ridge)`` clamped at zero, with the
    residual norm as objective — per-row math identical to
    :func:`repro.fingerprint.objective.solve_thetas_candidates` with no
    fixed users. All plans' pools (every restart) are stacked into one
    row sweep; each row reads only its own plan's target, so the fusion
    is value-neutral. The per-plan top-``top_m`` ranking over all
    restarts equals the localize harvest for K=1 (the heap keeps the
    incumbent plus each restart's next-best alternatives, which for one
    user is exactly the candidate ranking).

    Every staging array comes from the ``arena`` when one is passed
    (fresh ``np.empty`` otherwise); the arithmetic is the same ufunc
    sequence either way, applied with ``out=`` into reused storage —
    bitwise-identical float64 results, no per-batch allocation.
    """

    def _take(name, shape, dtype=np.float64):
        if arena is None:
            return np.empty(shape, dtype=dtype)
        return arena.take(name, shape, dtype)

    counts: List[int] = []
    total = 0
    for plan in plans:
        c = sum(
            plan.pool_kernels[r][0].shape[0] for r in range(len(plan.pools))
        )
        counts.append(c)
        total += c
    n = plans[0].objective._weighted_target.shape[0]

    kernels = _take("solve_kernels", (total, n))
    target_rows = _take("solve_targets", (len(plans), n))
    row_plan = _take("solve_row_plan", (total,), dtype=np.int64)
    thetas = _take("solve_thetas", (total,))
    objectives = _take("solve_objectives", (total,))

    offset = 0
    for p, plan in enumerate(plans):
        target_rows[p] = plan.objective._weighted_target
        weights = plan.objective.weights
        for r in range(len(plan.pools)):
            kern = plan.pool_kernels[r][0]
            dest = kernels[offset:offset + kern.shape[0]]
            if weights is None:
                dest[:] = kern
            else:
                np.multiply(kern, weights, out=dest)
            row_plan[offset:offset + kern.shape[0]] = p
            offset += kern.shape[0]

    block = min(_SOLVE_BLOCK_ROWS, total)
    t_blk_buf = _take("solve_t_blk", (block, n))
    resid_buf = _take("solve_resid", (block, n))
    num_buf = _take("solve_num", (block,))
    den_buf = _take("solve_den", (block,))
    for start in range(0, total, _SOLVE_BLOCK_ROWS):
        stop = min(start + _SOLVE_BLOCK_ROWS, total)
        rows = stop - start
        k_blk = kernels[start:stop]
        t_blk = t_blk_buf[:rows]
        np.take(target_rows, row_plan[start:stop], axis=0, out=t_blk)
        num = num_buf[:rows]
        den = den_buf[:rows]
        np.einsum("ij,ij->i", k_blk, t_blk, out=num)
        np.einsum("ij,ij->i", k_blk, k_blk, out=den)
        den += _RIDGE
        th = thetas[start:stop]
        np.divide(num, den, out=th)
        th[th < 0.0] = 0.0  # exact K=1 NNLS: infeasible => empty support
        resid = resid_buf[:rows]
        np.multiply(k_blk, th[:, None], out=resid)
        resid -= t_blk
        objectives[start:stop] = np.linalg.norm(resid, axis=1)

    results: List[LocalizationResult] = []
    offset = 0
    for plan, count in zip(plans, counts):
        objs = objectives[offset:offset + count]
        ths = thetas[offset:offset + count]
        positions = _take("solve_positions", (count, 2))
        pos = 0
        for r in range(len(plan.pools)):
            pool = plan.pools[r][0]
            positions[pos:pos + pool.shape[0]] = pool
            pos += pool.shape[0]
        offset += count
        order = np.argsort(objs, kind="stable")[: plan.request.top_m]
        fits = [
            CompositionFit(
                positions=positions[i].reshape(1, 2).copy(),
                thetas=np.array([ths[i]]),
                objective=float(objs[i]),
            )
            for i in order
        ]
        results.append(LocalizationResult(fits=fits))
    return results


def solve_multi_user(plan: _LocalizePlan, engine=None) -> LocalizationResult:
    """Solve one K>=2 plan: per-restart coordinate descent + harvest.

    The descent consumes the plan's private search stream (restart
    draws already happened in the plan phase), and the harvest is the
    exact :meth:`NLSLocalizer.localize` composition heap.
    """
    req = plan.request
    gen = np.random.default_rng(plan.search_seed)
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
    counter = 0
    for r in range(len(plan.pools)):
        outcome = coordinate_descent(
            plan.objective, plan.pools[r], rng=gen, sweeps=req.sweeps,
            pool_kernels=plan.pool_kernels[r], engine=engine,
        )
        counter = harvest_outcome(heap, counter, outcome, plan.pools[r],
                                  req.top_m)
    return LocalizationResult(fits=fits_from_heap(heap, req.top_m))


class MicroBatchScheduler:
    """Drains the admission queue and answers envelopes in fused batches.

    Parameters
    ----------
    localizer:
        The service's shared :class:`NLSLocalizer` (model + field).
    queue:
        The :class:`AdmissionQueue` to drain.
    metrics:
        The service's :class:`ServerMetrics`.
    fingerprint_map:
        Optional shared map for seeded pools (requests opt out via
        ``use_map=False``).
    engine:
        Optional :class:`repro.engine.Engine` for chunked kernel
        evaluation inside the fused call.
    session_lookup:
        ``session_id -> TrackingSession | None`` resolver for
        :class:`TrackStepRequest` work.
    max_batch / max_wait_s:
        The micro-batching trigger: drain when ``max_batch`` envelopes
        are pending or ``max_wait_s`` elapsed since the first arrival,
        whichever comes first. ``max_batch=1`` *is* per-request
        dispatch. With ``adaptive`` on, ``max_wait_s`` is the
        controller's hard ceiling rather than the fixed window.
    adaptive / target_p95_s / fusion_min_depth:
        The :class:`AdaptiveBatchController` knobs. ``adaptive=False``
        restores the fixed ``max_wait_s`` window exactly (plus the
        queue's ``eager_single`` policy, when set).
        ``fusion_min_depth`` is both the controller's bypass threshold
        and the dispatch-side cutoff below which a drained batch is
        answered through the singleton fast path instead of the fusion
        bookkeeping.
    idle_wait_s:
        Poll bound of the empty-queue wait (also the stop-signal
        latency); non-positive values are clamped to a real
        condition-variable wait by the queue (no busy-spin).
    envelope_pool:
        Optional :class:`~repro.serve.admission.EnvelopePool`; when
        set, answered envelopes are recycled after each cycle.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy` for the fused
        kernel evaluation. Transient failures (injected faults, engine
        errors) are retried under bounded backoff before the serial
        fallback is attempted; every retry is counted in
        ``metrics.retries``.
    fault_threshold / cooldown_s:
        The :class:`~repro.serve.resilience.BackendGovernor` knobs:
        after ``fault_threshold`` consecutive fused-evaluation faults
        the parallel backend is leased out for ``cooldown_s``
        injected-clock seconds (batches evaluate serially — always
        bitwise-identical in float64), then restored.
    """

    def __init__(
        self,
        localizer: NLSLocalizer,
        queue: AdmissionQueue,
        metrics: ServerMetrics,
        fingerprint_map=None,
        engine=None,
        session_lookup: Optional[Callable[[str], object]] = None,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        idle_wait_s: float = 0.05,
        adaptive: bool = True,
        target_p95_s: Optional[float] = None,
        fusion_min_depth: int = 2,
        envelope_pool: Optional[EnvelopePool] = None,
        retry_policy=None,
        fault_threshold: int = 3,
        cooldown_s: float = 5.0,
    ):
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {max_wait_s}"
            )
        self.localizer = localizer
        self.queue = queue
        self.metrics = metrics
        self.fingerprint_map = fingerprint_map
        self.engine = engine
        self.session_lookup = session_lookup
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.idle_wait_s = float(idle_wait_s)
        self.adaptive = bool(adaptive)
        self.fusion_min_depth = int(fusion_min_depth)
        self.controller = AdaptiveBatchController(
            max_wait_s=self.max_wait_s,
            fusion_min_depth=fusion_min_depth,
            target_p95_s=target_p95_s,
            adaptive=self.adaptive,
        )
        if self.adaptive:
            # The queue feeds the arrival EWMA from its offer path.
            queue.controller = self.controller
        self.arena = BatchArena()
        self.envelope_pool = envelope_pool
        self._match_workspace: Dict[str, np.ndarray] = {}
        self.retry_policy = retry_policy
        self.governor = BackendGovernor(
            engine,
            fault_threshold=fault_threshold,
            cooldown_s=cooldown_s,
            on_fallback=metrics.record_backend_fallback,
            on_reescalate=metrics.record_backend_reescalation,
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise ConfigurationError("scheduler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Signal the loop to drain the queue and exit, then join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while True:
            self.run_once()
            if self._stop.is_set() and self.queue.depth() == 0:
                return

    # ------------------------------------------------------------------
    def run_once(self) -> int:
        """One drain-and-process cycle; returns envelopes answered.

        Public so tests (and the CLI smoke path) can drive the
        scheduler synchronously without the thread.
        """
        batch, expired = self.queue.take(
            self.max_batch,
            wait_timeout=self.idle_wait_s,
            batch_wait=self.max_wait_s,
            controller=self.controller if self.adaptive else None,
        )
        for item in expired:
            self._complete_error(
                item, ERROR_DEADLINE_EXPIRED,
                "deadline lapsed while queued",
            )
        if batch:
            self._process(batch)
        answered = len(batch) + len(expired)
        pool = self.envelope_pool
        if pool is not None:
            # Every drained envelope is answered by now (_process
            # guarantees it); recycle the shells.
            for item in expired:
                pool.release(item)
            for item in batch:
                pool.release(item)
        return answered

    # ------------------------------------------------------------------
    def _process(self, batch: List[PendingRequest]) -> None:
        try:
            self._process_inner(batch)
        finally:
            # No envelope may dangle: a scheduler bug still answers.
            for item in batch:
                if not item.future.done():
                    self._complete_error(
                        item, ERROR_INTERNAL, "scheduler failed to reply"
                    )

    def _process_inner(self, batch: List[PendingRequest]) -> None:
        taken_at = _clock.monotonic()
        live: List[PendingRequest] = []
        for item in batch:
            # Dispatch-time re-check: the deadline may have lapsed in
            # the window between the drain purge and this point.
            if item.expired(taken_at):
                self._complete_error(
                    item, ERROR_DEADLINE_EXPIRED,
                    "deadline lapsed before evaluation",
                )
            else:
                live.append(item)
        if not live:
            return
        for item in live:
            # Stage 1 of the latency decomposition: queue wait ends here.
            item.stamp("admission", taken_at)
        batch_size = len(live)
        engine = self.governor.current_engine()
        if batch_size < max(2, self.fusion_min_depth):
            # Below the fusion threshold the cross-request bookkeeping
            # costs more than it amortizes; dispatch singly.
            for item in live:
                self._process_one(item, engine, taken_at)
            return

        localize = [i for i in live if isinstance(i.request, LocalizeRequest)]
        track = [i for i in live if isinstance(i.request, TrackStepRequest)]

        try:
            prematches = fuse_map_matches(
                self.fingerprint_map, localize,
                workspace=self._match_workspace,
            )
        except Exception as exc:
            # Observable fallback to per-request matching (values are
            # unchanged either way); a silent swallow here hid real
            # prematch bugs behind identical replies.
            _LOG.warning(
                "fused prematch failed (%s: %s); falling back to "
                "per-request matching", type(exc).__name__, exc,
            )
            self.metrics.record_internal_fault("serve.prematch")
            prematches = {}
        plans: List[_LocalizePlan] = []
        for item in localize:
            try:
                plans.append(
                    plan_localize(
                        self.localizer, self.fingerprint_map, item,
                        prematch=prematches.get(id(item)),
                    )
                )
            except Exception as exc:  # typed reply, never a dropped future
                self._complete_error(
                    item, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
        fused_rows = 0
        if plans:
            try:
                fused_rows = self._fused_kernels(plans, engine)
            except Exception as exc:
                for plan in plans:
                    self._complete_error(
                        plan.item, ERROR_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    )
                plans = []
            else:
                fuse_done = _clock.monotonic()
                for plan in plans:
                    plan.item.stamp("fuse", fuse_done)
        self.metrics.record_batch(
            batch_size, self.queue.depth_hint(), fused_rows
        )

        singles = [p for p in plans if p.request.user_count == 1]
        multis = [p for p in plans if p.request.user_count > 1]

        # K=1: fuse across requests of equal sniffer arity (dropout
        # gives different column counts; grouping keeps rows rectangular).
        groups: "OrderedDict[int, List[_LocalizePlan]]" = OrderedDict()
        for plan in singles:
            groups.setdefault(plan.objective.sniffer_count, []).append(plan)
        for group in groups.values():
            try:
                results = solve_single_user_fused(group, arena=self.arena)
            except Exception as exc:
                for plan in group:
                    self._complete_error(
                        plan.item, ERROR_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    )
                continue
            solve_done = _clock.monotonic()
            for plan, result in zip(group, results):
                plan.item.stamp("solve", solve_done)
                self._complete_localize(plan.item, result, batch_size, taken_at)

        for plan in multis:
            try:
                result = solve_multi_user(plan, engine=engine)
            except Exception as exc:
                self._complete_error(
                    plan.item, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
                continue
            plan.item.stamp("solve")
            self._complete_localize(plan.item, result, batch_size, taken_at)

        self._process_track(track, batch_size, taken_at)

    def _process_one(self, item: PendingRequest, engine, taken_at: float) -> None:
        """Singleton fast path: a drained batch of one skips the
        cross-request fusion bookkeeping (prematch stacking, arity
        grouping) and dispatches straight through. The reply is
        identical by construction — the steps below are the exact
        functions the batched path runs over lists of one, and every
        request's RNG streams are private — so only the dispatch
        overhead goes away.
        """
        item.stamp("admission", taken_at)
        if isinstance(item.request, TrackStepRequest):
            self.metrics.record_batch(1, self.queue.depth_hint(), 0)
            self._process_track([item], 1, taken_at)
            return
        prematch = None
        if _fused_match_eligible(self.fingerprint_map, item.request):
            try:
                prematch = fuse_map_matches(
                    self.fingerprint_map, [item],
                    workspace=self._match_workspace,
                ).get(id(item))
            except Exception as exc:
                _LOG.warning(
                    "fused prematch failed (%s: %s); falling back to "
                    "per-request matching", type(exc).__name__, exc,
                )
                self.metrics.record_internal_fault("serve.prematch")
        try:
            plan = plan_localize(
                self.localizer, self.fingerprint_map, item, prematch=prematch
            )
            fused_rows = self._fused_kernels([plan], engine)
        except Exception as exc:
            self.metrics.record_batch(1, self.queue.depth_hint(), 0)
            self._complete_error(
                item, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
            return
        item.stamp("fuse")
        self.metrics.record_batch(1, self.queue.depth_hint(), fused_rows)
        try:
            if plan.request.user_count == 1:
                result = solve_single_user_fused([plan], arena=self.arena)[0]
            else:
                result = solve_multi_user(plan, engine=engine)
        except Exception as exc:
            self._complete_error(
                item, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
            return
        item.stamp("solve")
        self._complete_localize(item, result, 1, taken_at)

    def _fused_kernels(self, plans: List[_LocalizePlan], engine) -> int:
        """The fused kernel pass under the resilience ladder.

        Bounded retries first (when a policy is set), then — if the
        parallel backend keeps failing — a one-shot serial fallback for
        *this* batch, with the governor counting the fault toward a
        cool-down lease. Serial evaluation of the same pools is bitwise-
        identical in float64, so degradation never changes a reply.
        A retry restages the same plans into the same arena buffers —
        a deterministic overwrite, not an accumulation.
        """

        def run(eng) -> int:
            if self.retry_policy is None:
                return fuse_pool_kernels(self.localizer.model, plans,
                                         engine=eng, arena=self.arena)
            return call_with_retry(
                lambda: fuse_pool_kernels(self.localizer.model, plans,
                                          engine=eng, arena=self.arena),
                self.retry_policy,
                on_retry=lambda attempt, exc: self.metrics.record_retry(
                    "serve.batch.fuse"
                ),
                label="serve.batch.fuse",
            )

        if engine is None:
            return run(None)
        try:
            rows = run(engine)
        except _BACKEND_FAULTS as exc:
            self.governor.record_fault()
            _LOG.warning(
                "fused kernel pass failed on the parallel backend "
                "(%s: %s); evaluating this batch serially",
                type(exc).__name__, exc,
            )
            self.metrics.record_internal_fault("serve.batch.fuse")
            return run(None)
        self.governor.record_success()
        return rows

    def _process_track(
        self,
        items: List[PendingRequest],
        batch_size: int,
        taken_at: float,
    ) -> None:
        """Run tracking steps, FIFO within each session."""
        groups: "OrderedDict[str, List[PendingRequest]]" = OrderedDict()
        for item in items:
            groups.setdefault(item.request.session_id, []).append(item)
        for session_id, group in groups.items():
            session = (
                self.session_lookup(session_id)
                if self.session_lookup is not None
                else None
            )
            if session is None:
                for item in group:
                    self._complete_error(
                        item, ERROR_UNKNOWN_SESSION,
                        f"no tracking session {session_id!r}",
                    )
                continue
            for item in group:
                try:
                    observation = item.request.observation
                    reason = session.validate(observation)
                    step = session.process(observation)
                    if step is None and reason is None:
                        reason = session.SKIP_STEP_FAILED
                    reply = TrackStepReply(
                        request_id=item.request.request_id,
                        client_id=item.request.client_id,
                        session_id=session_id,
                        step=step,
                        skip_reason=reason,
                        estimates=session.estimates(),
                        latency_s=item.latency(),
                        batch_size=batch_size,
                    )
                except Exception as exc:
                    self._complete_error(
                        item, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    )
                    continue
                item.stamp("solve")
                item.future.set_result(reply)
                self.metrics.record_reply(
                    reply.latency_s, taken_at - item.submitted_at
                )
                self._finalize_trace(item, ok=True)

    # ------------------------------------------------------------------
    def _complete_localize(
        self,
        item: PendingRequest,
        result: LocalizationResult,
        batch_size: int,
        taken_at: float,
    ) -> None:
        reply = LocalizeReply(
            request_id=item.request.request_id,
            client_id=item.request.client_id,
            result=result,
            latency_s=item.latency(),
            batch_size=batch_size,
        )
        item.future.set_result(reply)
        self.metrics.record_reply(reply.latency_s, taken_at - item.submitted_at)
        self._finalize_trace(item, ok=True)

    def _complete_error(
        self, item: PendingRequest, code: str, message: str
    ) -> None:
        latency = item.latency()
        item.future.set_result(
            ErrorReply(
                request_id=item.request.request_id,
                client_id=item.request.client_id,
                code=code,
                message=message,
                latency_s=latency,
            )
        )
        self.metrics.record_error(code, latency)
        self._finalize_trace(item, ok=False)

    def _finalize_trace(self, item: PendingRequest, ok: bool) -> None:
        """Fold the envelope's stage stamps into the metrics trace ring.

        The synthesized final ``reply`` stage makes the durations sum
        to the request's total latency even on paths that never stamped
        (admission-time errors, deadline purges).
        """
        request = item.request
        span = getattr(request, "span_id", None) or request.request_id
        self.metrics.record_trace(
            span, request.request_id, item.stage_durations(), ok=ok
        )
