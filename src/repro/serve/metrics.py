"""Operational metrics of the batched localization service.

One :class:`ServerMetrics` per service, updated from the submission
path and the scheduler thread (all mutation under one lock), read by
anyone: :meth:`snapshot` is the JSON-ready dict behind
:meth:`to_json` and the :class:`MetricsServer` HTTP endpoint.

The latency machinery is the shared :class:`repro.metrics.
LatencyReservoir` — the same ring buffer the streaming layer uses —
extended here with p99 (a serving SLO, not a tracking one) and a
batch-size histogram, the direct evidence of how well micro-batching
is amortizing engine calls.
"""

from __future__ import annotations

import json
import threading
from collections import Counter, deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics import LatencyReservoir


def _nan_safe_deep(value):
    """JSON-ready copy: non-finite floats become ``None``, recursively."""
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _nan_safe_deep(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_nan_safe_deep(v) for v in value]
    return value


class ServerMetrics:
    """Counters, histograms, and latency quantiles for one service."""

    def __init__(self, latency_capacity: int = 8192, trace_capacity: int = 256):
        self._lock = threading.Lock()
        self._latencies = LatencyReservoir(latency_capacity)
        self._queue_wait = LatencyReservoir(latency_capacity)
        self.requests_submitted = 0
        self.replies_ok = 0
        self.replies_error: Counter = Counter()  # by ErrorReply.code
        self.admission_rejections = 0
        self.admission_timeouts = 0
        self.deadline_expiries = 0
        self.batches = 0
        self.batch_sizes: Counter = Counter()  # exact size -> count
        self.fused_candidate_rows = 0
        self.queue_depth = 0  # gauge: sampled at each batch drain
        self.retries: Counter = Counter()  # by retried-operation label
        self.backend_fallbacks = 0  # parallel backend leased out (serial mode)
        self.backend_reescalations = 0  # parallel backend restored
        self.internal_faults: Counter = Counter()  # by origin site
        # Per-stage latency decomposition (admission → fuse → solve →
        # reply, plus gateway_in/gateway_out when a gateway fronts the
        # service). Reservoirs are created lazily per stage name so the
        # decomposition reports exactly the stages the request path hit.
        self._stage_latencies: Dict[str, LatencyReservoir] = {}
        self._stage_capacity = int(latency_capacity)
        self._traces: deque = deque(maxlen=trace_capacity)
        self.traces_recorded = 0
        self.governor_adjustments: Counter = Counter()  # by knob name
        self.endpoint: Optional[Dict[str, object]] = None  # bound HTTP addr
        self._probes: Dict[str, object] = {}  # live objects we snapshot

    def attach_probes(
        self,
        kernel_cache=None,
        controller=None,
        arena=None,
        envelope_pool=None,
        governor=None,
    ) -> None:
        """Register live scheduler internals for snapshot reporting.

        Probes are read (plain counter attributes, no locks) at
        :meth:`snapshot` time, which is what makes the kernel LRU
        cache, the adaptive batch controller, the batch arena, and the
        envelope pool visible through ``/metrics`` without threading
        every counter bump through this object's lock. ``None`` values
        are skipped, so services attach only what they have.
        """
        with self._lock:
            for name, probe in (
                ("kernel_cache", kernel_cache),
                ("controller", controller),
                ("arena", arena),
                ("envelope_pool", envelope_pool),
                ("governor", governor),
            ):
                if probe is not None:
                    self._probes[name] = probe

    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self.requests_submitted += 1

    def record_rejection(self, timed_out: bool = False) -> None:
        with self._lock:
            if timed_out:
                self.admission_timeouts += 1
            else:
                self.admission_rejections += 1

    def record_batch(
        self, size: int, queue_depth: int, fused_rows: int = 0
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batch_sizes[int(size)] += 1
            self.queue_depth = int(queue_depth)
            self.fused_candidate_rows += int(fused_rows)

    def record_reply(
        self, latency_s: float, queue_wait_s: Optional[float] = None
    ) -> None:
        with self._lock:
            self.replies_ok += 1
            self._latencies.record(latency_s)
            if queue_wait_s is not None:
                self._queue_wait.record(queue_wait_s)

    def record_error(self, code: str, latency_s: Optional[float] = None) -> None:
        with self._lock:
            self.replies_error[code] += 1
            if code == "deadline_expired":
                self.deadline_expiries += 1
            if latency_s is not None and np.isfinite(latency_s):
                self._latencies.record(latency_s)

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = int(depth)

    # ------------------------------------------------------------------
    def record_retry(self, label: str) -> None:
        """One bounded-backoff retry of ``label`` (the RetryPolicy hook)."""
        with self._lock:
            self.retries[label] += 1

    def record_backend_fallback(self) -> None:
        """The scheduler degraded from its parallel backend to serial."""
        with self._lock:
            self.backend_fallbacks += 1

    def record_backend_reescalation(self) -> None:
        """The scheduler restored its parallel backend after a cool-down."""
        with self._lock:
            self.backend_reescalations += 1

    def record_internal_fault(self, where: str) -> None:
        """A swallowed-but-observed internal failure (e.g. prematch pass)."""
        with self._lock:
            self.internal_faults[where] += 1

    # ------------------------------------------------------------------
    # Tracing: per-stage latency decomposition and the trace ring.
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """One sample of a single stage (the gateway's in/out legs)."""
        with self._lock:
            self._record_stage_locked(stage, seconds)

    def _record_stage_locked(self, stage: str, seconds: float) -> None:
        reservoir = self._stage_latencies.get(stage)
        if reservoir is None:
            reservoir = LatencyReservoir(self._stage_capacity)
            self._stage_latencies[stage] = reservoir
        reservoir.record(seconds)

    def record_trace(
        self,
        span_id: str,
        request_id: str,
        stage_durations: Sequence[Tuple[str, float]],
        ok: bool = True,
    ) -> None:
        """One completed request's stage decomposition.

        Feeds every stage's reservoir and appends one entry to the
        bounded trace ring (the ``trace dump`` payload). Stamped by the
        scheduler at reply time; ``stage_durations`` is
        :meth:`~repro.serve.admission.PendingRequest.stage_durations`
        output, so the durations sum to the reply's total latency.
        """
        with self._lock:
            stages: Dict[str, float] = {}
            for stage, seconds in stage_durations:
                self._record_stage_locked(stage, seconds)
                stages[stage] = stages.get(stage, 0.0) + float(seconds)
            self.traces_recorded += 1
            self._traces.append({
                "span_id": span_id,
                "request_id": request_id,
                "ok": bool(ok),
                "stages": stages,
                "total_s": float(sum(stages.values())),
            })

    def recent_traces(self, limit: Optional[int] = None) -> List[Dict]:
        """Newest-last copy of the trace ring (the ``/trace`` payload)."""
        with self._lock:
            traces = list(self._traces)
        if limit is not None:
            limit = max(0, int(limit))
            traces = traces[len(traces) - limit:] if limit else []
        return traces

    def stage_quantiles(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {"p50_s": ..., "p95_s": ..., "count": n}}``."""
        with self._lock:
            return self._stage_quantiles_locked()

    def _stage_quantiles_locked(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for stage, reservoir in self._stage_latencies.items():
            quantiles = reservoir.quantiles((0.50, 0.95))
            out[stage] = {
                "p50_s": quantiles["p50"],
                "p95_s": quantiles["p95"],
                "count": reservoir.count,
            }
        return out

    # ------------------------------------------------------------------
    def record_governor_adjustment(self, knob: str) -> None:
        """The gateway governor moved ``knob`` (every move is counted)."""
        with self._lock:
            self.governor_adjustments[knob] += 1

    def set_endpoint(self, host: str, port: int) -> None:
        """Record the bound HTTP endpoint for snapshot reporting."""
        with self._lock:
            self.endpoint = {"host": str(host), "port": int(port)}

    # ------------------------------------------------------------------
    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 reply latency (seconds), recent window."""
        with self._lock:
            return self._latencies.quantiles((0.50, 0.95, 0.99))

    def mean_batch_size(self) -> float:
        with self._lock:
            total = sum(self.batch_sizes.values())
            if total == 0:
                return float("nan")
            weighted = sum(s * c for s, c in self.batch_sizes.items())
            return weighted / total

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready dict of everything (the /metrics payload)."""
        with self._lock:
            quantiles = self._latencies.quantiles((0.50, 0.95, 0.99))
            waits = self._queue_wait.quantiles((0.50, 0.95))
            sizes = dict(sorted(self.batch_sizes.items()))
            total = sum(sizes.values())
            mean_batch = (
                sum(s * c for s, c in sizes.items()) / total
                if total
                else float("nan")
            )
            snap = {
                "requests_submitted": self.requests_submitted,
                "replies_ok": self.replies_ok,
                "replies_error": dict(self.replies_error),
                "replies_error_total": int(sum(self.replies_error.values())),
                "admission_rejections": self.admission_rejections,
                "admission_timeouts": self.admission_timeouts,
                "deadline_expiries": self.deadline_expiries,
                "queue_depth": self.queue_depth,
                "batches": self.batches,
                "batch_size_histogram": {str(k): v for k, v in sizes.items()},
                "batch_size_mean": mean_batch,
                "fused_candidate_rows": self.fused_candidate_rows,
                "retries": {str(k): v for k, v in sorted(self.retries.items())},
                "retries_total": int(sum(self.retries.values())),
                "backend_fallbacks": self.backend_fallbacks,
                "backend_reescalations": self.backend_reescalations,
                "internal_faults": {
                    str(k): v for k, v in sorted(self.internal_faults.items())
                },
                "internal_faults_total": int(sum(self.internal_faults.values())),
                "latency_p50_s": quantiles["p50"],
                "latency_p95_s": quantiles["p95"],
                "latency_p99_s": quantiles["p99"],
                "queue_wait_p50_s": waits["p50"],
                "queue_wait_p95_s": waits["p95"],
                "stages": self._stage_quantiles_locked(),
                "traces_recorded": self.traces_recorded,
                "governor_adjustments": {
                    str(k): v
                    for k, v in sorted(self.governor_adjustments.items())
                },
                "governor_adjustments_total": int(
                    sum(self.governor_adjustments.values())
                ),
            }
            if self.endpoint is not None:
                snap["metrics_endpoint"] = dict(self.endpoint)
            cache = self._probes.get("kernel_cache")
            if cache is not None:
                snap["kernel_cache"] = {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "hit_rate": cache.hit_rate,
                    "size": len(cache),
                    "capacity": cache.capacity,
                }
            controller = self._probes.get("controller")
            if controller is not None:
                snap["batch_controller"] = controller.snapshot()
            arena = self._probes.get("arena")
            if arena is not None:
                snap["batch_arena"] = arena.snapshot()
            pool = self._probes.get("envelope_pool")
            if pool is not None:
                snap["envelope_pool"] = {
                    "reuses": pool.reuses,
                    "allocations": pool.allocations,
                    "free": len(pool),
                }
            governor = self._probes.get("governor")
            if governor is not None:
                snap["governor"] = governor.snapshot()
            return snap

    def to_json(self, indent: int = 2) -> str:
        payload = _nan_safe_deep(self.snapshot())
        return json.dumps(payload, indent=indent, sort_keys=True)


class MetricsServer:
    """Minimal HTTP JSON endpoint for service or fleet metrics.

    Serves from a daemon thread — enough for a scrape target or a curl
    during a load test, with zero dependencies:

    ``GET /metrics``
        Single-service mode: the flat :meth:`ServerMetrics.snapshot`
        JSON (unchanged). Fleet mode: the merged fleet snapshot —
        ``{"router": ..., "workers": {...}, "aggregate": ...}`` —
        instead of one flat blob.
    ``GET /metrics?worker=<id>``
        Fleet mode: exactly one worker's snapshot (its flat service
        metrics plus pid and open sessions); 404 for an unknown or
        unreachable worker, and in single-service mode.
    ``GET /trace``
        Single-service mode: the recent trace ring plus the per-stage
        latency decomposition (``?limit=N`` caps the trace count); 404
        in fleet mode.
    ``GET /healthz``
        ``{"status": "ok"}``.

    Parameters
    ----------
    metrics:
        A :class:`ServerMetrics` to expose (single-service mode).
    fleet:
        A :class:`repro.fleet.ServeFleet` (or anything with
        ``fleet_snapshot()`` / ``worker_snapshot(id)``) to expose
        instead. Exactly one of ``metrics`` / ``fleet`` must be given.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    """

    def __init__(self, metrics: Optional[ServerMetrics] = None,
                 host: str = "127.0.0.1", port: int = 0, fleet=None):
        if (metrics is None) == (fleet is None):
            raise ConfigurationError(
                "pass exactly one of metrics= (a ServerMetrics) or "
                "fleet= (a ServeFleet)"
            )
        self.metrics = metrics
        self.fleet = fleet
        self.host = host
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (``None`` before)."""
        if self._httpd is None:
            return None
        return int(self._httpd.server_address[1])

    def start(self) -> int:
        """Bind, spawn the serving thread, return the bound port."""
        metrics = self.metrics
        fleet = self.fleet

        def _dump(payload) -> bytes:
            return json.dumps(
                _nan_safe_deep(payload), indent=2, sort_keys=True
            ).encode()

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                parsed = urlparse(self.path)
                if parsed.path in ("/metrics", "/"):
                    query = parse_qs(parsed.query)
                    worker = query.get("worker")
                    if worker is not None:
                        if fleet is None:
                            self.send_error(
                                404, "no fleet behind this endpoint"
                            )
                            return
                        try:
                            worker_id = int(worker[0])
                        except ValueError:
                            self.send_error(
                                400, f"worker must be an id, got {worker[0]!r}"
                            )
                            return
                        snap = fleet.worker_snapshot(worker_id)
                        if snap is None:
                            self.send_error(
                                404, f"no reachable worker {worker_id}"
                            )
                            return
                        body = _dump(snap)
                    elif fleet is not None:
                        body = _dump(fleet.fleet_snapshot())
                    else:
                        body = metrics.to_json().encode()
                elif parsed.path == "/trace":
                    if metrics is None:
                        self.send_error(
                            404, "trace dump needs single-service mode"
                        )
                        return
                    query = parse_qs(parsed.query)
                    limit = None
                    if "limit" in query:
                        try:
                            limit = int(query["limit"][0])
                        except ValueError:
                            self.send_error(
                                400,
                                f"limit must be an int, "
                                f"got {query['limit'][0]!r}",
                            )
                            return
                    body = _dump({
                        "traces": metrics.recent_traces(limit),
                        "stages": metrics.stage_quantiles(),
                    })
                elif parsed.path == "/healthz":
                    body = b'{"status": "ok"}'
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr chatter
                pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-metrics",
            daemon=True,
        )
        self._thread.start()
        if metrics is not None:
            # The bound address rides along in every snapshot, so a
            # scrape (or an operator reading --metrics-out) learns where
            # the live endpoint is even when port=0 picked it.
            metrics.set_endpoint(self.host, self.port)
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
