"""Full-map peak-detection localization.

Requires the flux at *every* node (the expensive full-information
regime); positions are the recursive-briefing peaks. This is both the
paper's Section III.C method and the natural baseline against which
the sparse NLS approach's cheapness is measured.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fingerprint.briefing import brief_flux_map
from repro.network.topology import Network


class PeakLocalizer:
    """Localize users from a complete flux map via recursive briefing."""

    def __init__(self, network: Network, smooth: bool = True):
        self.network = network
        self.smooth = smooth

    def localize(
        self, flux_map: np.ndarray, user_count: int, stop_fraction: float = 0.05
    ) -> np.ndarray:
        """Return up to ``(user_count, 2)`` estimated positions.

        If briefing stops early (residual below threshold), the last
        detected position is repeated to keep the output shape —
        callers compare against ground truth by assignment, so
        repeats simply score as misses.
        """
        if user_count < 1:
            raise ConfigurationError(f"user_count must be >= 1, got {user_count}")
        result = brief_flux_map(
            self.network,
            flux_map,
            max_users=user_count,
            smooth=self.smooth,
            stop_fraction=stop_fraction,
        )
        positions = result.positions
        while positions.shape[0] < user_count:
            positions = np.vstack([positions, positions[-1]])
        return positions
