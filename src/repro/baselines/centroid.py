"""Flux-weighted centroid localization (naive single-user baseline)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def centroid_localize(
    positions: np.ndarray, flux: np.ndarray, power: float = 2.0
) -> np.ndarray:
    """Estimate a single user position as the flux-weighted centroid.

    ``power`` sharpens the weighting (``flux ** power``); the flux
    peaks at the sink, so a sharpened centroid is a cheap
    single-user estimator — but it is badly biased toward the field
    center for boundary sinks and breaks completely for multiple
    users, which is exactly the motivation for model fitting.
    """
    positions = np.asarray(positions, dtype=float)
    flux = np.asarray(flux, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError(f"positions must be (n, 2), got {positions.shape}")
    if flux.shape != (positions.shape[0],):
        raise ConfigurationError(
            f"flux must have shape ({positions.shape[0]},), got {flux.shape}"
        )
    if power < 0:
        raise ConfigurationError(f"power must be >= 0, got {power}")
    weights = np.maximum(flux, 0.0) ** power
    total = float(weights.sum())
    if total <= 0:
        raise ConfigurationError("flux is all zero; no centroid")
    return (weights[:, None] * positions).sum(axis=0) / total
