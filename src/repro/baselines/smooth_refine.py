"""Gradient-based NLS refinement on smooth fields.

The paper argues Gauss-Newton / Levenberg-Marquardt are inapplicable
because a rectangular boundary makes the objective non-differentiable
(Section IV.A). On a *circular* field the boundary chord ``l`` is
smooth, so scipy's trust-region ``least_squares`` applies; this module
exists to demonstrate both halves of that claim in the search ablation
(it refines well on circles, stalls on rectangle edges).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, FittingError
from repro.fingerprint.objective import FluxObjective


def refine_smooth_field(
    objective: FluxObjective,
    initial_positions: np.ndarray,
    initial_thetas: np.ndarray,
    max_nfev: int = 200,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Jointly refine positions and thetas with ``scipy.optimize.least_squares``.

    Parameters
    ----------
    objective:
        Bound flux objective. Works on any field but is only
        *guaranteed* sensible on smooth boundaries.
    initial_positions:
        ``(K, 2)`` starting positions (e.g. the sampling-search
        incumbent).
    initial_thetas:
        ``(K,)`` starting stretch factors.

    Returns
    -------
    ``(positions, thetas, objective_value)``.
    """
    initial_positions = np.asarray(initial_positions, dtype=float)
    initial_thetas = np.asarray(initial_thetas, dtype=float)
    if initial_positions.ndim != 2 or initial_positions.shape[1] != 2:
        raise ConfigurationError(
            f"initial_positions must be (K, 2), got {initial_positions.shape}"
        )
    K = initial_positions.shape[0]
    if initial_thetas.shape != (K,):
        raise ConfigurationError("one theta per user required")

    from scipy.optimize import least_squares

    field = objective.model.field
    xmin, ymin, xmax, ymax = field.bounding_box

    def pack(positions: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        return np.concatenate([positions.ravel(), np.log(np.maximum(thetas, 1e-9))])

    def unpack(vec: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        positions = vec[: 2 * K].reshape(K, 2)
        thetas = np.exp(vec[2 * K :])
        return positions, thetas

    def residuals(vec: np.ndarray) -> np.ndarray:
        positions, thetas = unpack(vec)
        positions = field.clip(positions)
        kernels = objective.model.geometry_kernels(positions)
        kernels = objective._weight_kernels(kernels)
        return thetas @ kernels - objective._weighted_target

    x0 = pack(initial_positions, np.maximum(initial_thetas, 1e-6))
    lower = np.concatenate(
        [np.tile([xmin, ymin], K), np.full(K, np.log(1e-9))]
    )
    upper = np.concatenate(
        [np.tile([xmax, ymax], K), np.full(K, np.log(1e9))]
    )
    x0 = np.clip(x0, lower + 1e-9, upper - 1e-9)
    try:
        result = least_squares(
            residuals, x0, bounds=(lower, upper), max_nfev=max_nfev
        )
    except Exception as exc:  # pragma: no cover - scipy internal failures
        raise FittingError(f"least_squares refinement failed: {exc}") from exc
    positions, thetas = unpack(result.x)
    return field.clip(positions), thetas, float(np.linalg.norm(result.fun))
