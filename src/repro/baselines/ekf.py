"""Constant-velocity Kalman tracker over NLS position fixes.

The classical alternative to the paper's SMC tracker: feed the
per-round NLS point estimate into a constant-velocity Kalman filter
(the "EKF" of the remote-tracking literature [9, 23]; with position
measurements the update is linear, so this is the exact EKF for that
model). Compared in the tracking benches: the KF smooths but cannot
represent the multi-modal posterior the SMC samples keep, so it
recovers slower from bad fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive


@dataclass
class EKFState:
    """Filter state: position+velocity mean and covariance."""

    mean: np.ndarray  # (4,) [x, y, vx, vy]
    covariance: np.ndarray  # (4, 4)


class EKFTracker:
    """Constant-velocity Kalman filter for one user.

    Parameters
    ----------
    initial_position:
        First position fix (velocity initializes to zero).
    process_noise:
        Acceleration-noise intensity q; larger tracks maneuvers faster.
    measurement_noise:
        Std-dev of the NLS fix error fed to the filter.
    initial_uncertainty:
        Prior position/velocity std-dev.
    """

    _H = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])

    def __init__(
        self,
        initial_position: np.ndarray,
        process_noise: float = 1.0,
        measurement_noise: float = 1.5,
        initial_uncertainty: float = 5.0,
    ):
        initial_position = np.asarray(initial_position, dtype=float).reshape(2)
        self.q = check_positive("process_noise", process_noise)
        self.r = check_positive("measurement_noise", measurement_noise)
        p0 = check_positive("initial_uncertainty", initial_uncertainty)
        self.state = EKFState(
            mean=np.array([initial_position[0], initial_position[1], 0.0, 0.0]),
            covariance=np.diag([p0**2, p0**2, p0**2, p0**2]),
        )
        self.history: List[EKFState] = [self.state]

    def predict(self, dt: float) -> EKFState:
        """Time update over ``dt`` with the constant-velocity model."""
        check_positive("dt", dt)
        F = np.eye(4)
        F[0, 2] = F[1, 3] = dt
        # Discrete white-noise acceleration covariance.
        q = self.q
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        Q = q * np.array(
            [
                [dt4 / 4, 0, dt3 / 2, 0],
                [0, dt4 / 4, 0, dt3 / 2],
                [dt3 / 2, 0, dt2, 0],
                [0, dt3 / 2, 0, dt2],
            ]
        )
        mean = F @ self.state.mean
        cov = F @ self.state.covariance @ F.T + Q
        self.state = EKFState(mean=mean, covariance=cov)
        return self.state

    def update(self, measurement: np.ndarray) -> EKFState:
        """Measurement update with a 2-D position fix."""
        z = np.asarray(measurement, dtype=float).reshape(2)
        if not np.all(np.isfinite(z)):
            raise ConfigurationError("measurement must be finite")
        H = self._H
        R = np.eye(2) * self.r**2
        S = H @ self.state.covariance @ H.T + R
        K = self.state.covariance @ H.T @ np.linalg.inv(S)
        innovation = z - H @ self.state.mean
        mean = self.state.mean + K @ innovation
        cov = (np.eye(4) - K @ H) @ self.state.covariance
        self.state = EKFState(mean=mean, covariance=cov)
        self.history.append(self.state)
        return self.state

    def step(self, dt: float, measurement: Optional[np.ndarray]) -> np.ndarray:
        """Predict over ``dt``; update if a fix is available. Returns position."""
        self.predict(dt)
        if measurement is not None:
            self.update(measurement)
        return self.position

    @property
    def position(self) -> np.ndarray:
        return self.state.mean[:2].copy()

    @property
    def velocity(self) -> np.ndarray:
        return self.state.mean[2:].copy()
