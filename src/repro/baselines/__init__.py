"""Baseline localizers/trackers the paper compares against or builds on.

* :class:`PeakLocalizer` — full-flux-map peak detection (the
  Section III.C starting point, needs sniffing *every* node).
* :func:`centroid_localize` — flux-weighted centroid (naive).
* :class:`EKFTracker` — constant-velocity (extended) Kalman filter over
  NLS point fixes, the classical remote-tracking approach the related
  work ([9, 23]) uses.
* :func:`refine_smooth_field` — gradient-based local NLS refinement via
  scipy ``least_squares``; valid only on smooth (circular) boundaries,
  demonstrating why the paper's rectangular field forces sampling
  search.
"""

from repro.baselines.peak import PeakLocalizer
from repro.baselines.centroid import centroid_localize
from repro.baselines.ekf import EKFTracker
from repro.baselines.smooth_refine import refine_smooth_field

__all__ = [
    "PeakLocalizer",
    "centroid_localize",
    "EKFTracker",
    "refine_smooth_field",
]
