"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch any library failure with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class GeometryError(ReproError):
    """A geometric query was made with inconsistent inputs.

    Examples: ray-casting from a point outside the field boundary, or
    building a polygon field with fewer than three vertices.
    """


class DeploymentError(ReproError):
    """Node deployment could not satisfy the requested constraints."""


class ConnectivityError(ReproError):
    """An operation required a connected network but the graph was not.

    Raised e.g. when building a data-collection tree over a network with
    unreachable nodes and ``require_connected=True``.
    """


class FittingError(ReproError):
    """The NLS fitting process failed to produce a usable estimate."""


class TrackingError(ReproError):
    """The Sequential Monte Carlo tracker entered an unrecoverable state."""


class TraceError(ReproError):
    """A mobility trace could not be generated or parsed."""


class StreamError(ReproError):
    """The streaming tracking service hit an unrecoverable condition.

    Per-observation problems (malformed readings, out-of-order windows)
    are *not* stream errors — the stream layer skips and counts those.
    This is raised for structural failures: an unusable source, a
    checkpoint that does not match its session, a closed manager.
    """


class BackpressureTimeout(StreamError):
    """Block-mode backpressure could not admit a submission in time.

    Raised by :meth:`repro.stream.manager.SessionManager.submit` when
    the ``block`` policy waited longer than the configured timeout for
    the queue to drain below capacity. The submission was *not*
    enqueued; the producer decides whether to retry, shed, or abort.
    """


class EngineError(ReproError):
    """The parallel kernel engine hit a structural execution failure.

    Per-chunk *numerical* problems are not engine errors — kernels
    raise :class:`FittingError`/``FloatingPointError`` style failures
    that retries can absorb. This covers the executor machinery itself:
    an unusable backend, a worker pool that cannot complete its spans.
    """


class WorkerCrashed(EngineError):
    """A process-backend worker died or hung mid-evaluation.

    Raised by the fork backend's watchdog when the worker pool fails to
    complete its chunk spans within ``EngineConfig.watchdog_s`` —
    typically a killed/OOMed worker (its chunk is silently lost by
    ``multiprocessing.Pool``) or a worker stuck in a hang. The shared
    output buffer is discarded; callers retry under a
    :class:`~repro.faults.RetryPolicy` or fall back to the thread/serial
    path.
    """


class RetriesExhausted(ReproError):
    """A bounded :class:`~repro.faults.RetryPolicy` gave up.

    Raised by :func:`repro.faults.call_with_retry` after the final
    attempt failed; the last underlying exception is chained as
    ``__cause__``.
    """


class FaultInjected(ReproError):
    """An armed :class:`~repro.faults.FaultPlan` fired at a fault point.

    Only ever raised while a plan is armed — production runs with
    fault injection disarmed can never see this type. Chaos harnesses
    use it to tell injected failures from real bugs.
    """


class ServeError(ReproError):
    """Base class for failures of the batched localization service.

    Service replies carry these as *typed error replies* (an
    :class:`repro.serve.ErrorReply` names the concrete subclass via its
    ``code``); they are raised only when a caller explicitly converts a
    reply back into an exception.
    """


class AdmissionError(ServeError):
    """A request was refused by admission control (full queue or
    per-client quota) — under the ``reject`` policy immediately, under
    the ``block`` policy after the block timeout elapsed."""


class DeadlineExpired(ServeError):
    """A request's deadline passed before the scheduler reached it.

    Expired work is never silently dropped: the scheduler purges it
    from the queue and completes it with this typed error."""


class GatewayError(ServeError):
    """Base class for failures of the network gateway front-end."""


class ProtocolError(GatewayError):
    """A wire frame violated the gateway protocol — unparseable JSON,
    a missing or unknown frame type, or an oversized frame. The peer
    receives a typed ``error`` frame; well-formed traffic on the same
    connection continues."""
