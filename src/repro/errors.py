"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch any library failure with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class GeometryError(ReproError):
    """A geometric query was made with inconsistent inputs.

    Examples: ray-casting from a point outside the field boundary, or
    building a polygon field with fewer than three vertices.
    """


class DeploymentError(ReproError):
    """Node deployment could not satisfy the requested constraints."""


class ConnectivityError(ReproError):
    """An operation required a connected network but the graph was not.

    Raised e.g. when building a data-collection tree over a network with
    unreachable nodes and ``require_connected=True``.
    """


class FittingError(ReproError):
    """The NLS fitting process failed to produce a usable estimate."""


class TrackingError(ReproError):
    """The Sequential Monte Carlo tracker entered an unrecoverable state."""


class TraceError(ReproError):
    """A mobility trace could not be generated or parsed."""


class StreamError(ReproError):
    """The streaming tracking service hit an unrecoverable condition.

    Per-observation problems (malformed readings, out-of-order windows)
    are *not* stream errors — the stream layer skips and counts those.
    This is raised for structural failures: an unusable source, a
    checkpoint that does not match its session, a closed manager.
    """


class BackpressureTimeout(StreamError):
    """Block-mode backpressure could not admit a submission in time.

    Raised by :meth:`repro.stream.manager.SessionManager.submit` when
    the ``block`` policy waited longer than the configured timeout for
    the queue to drain below capacity. The submission was *not*
    enqueued; the producer decides whether to retry, shed, or abort.
    """


class ServeError(ReproError):
    """Base class for failures of the batched localization service.

    Service replies carry these as *typed error replies* (an
    :class:`repro.serve.ErrorReply` names the concrete subclass via its
    ``code``); they are raised only when a caller explicitly converts a
    reply back into an exception.
    """


class AdmissionError(ServeError):
    """A request was refused by admission control (full queue or
    per-client quota) — under the ``reject`` policy immediately, under
    the ``block`` policy after the block timeout elapsed."""


class DeadlineExpired(ServeError):
    """A request's deadline passed before the scheduler reached it.

    Expired work is never silently dropped: the scheduler purges it
    from the queue and completes it with this typed error."""
