"""Shared metrics primitives: percentiles and latency reservoirs.

Before this module existed the percentile machinery lived twice — a
pure-Python linear-interpolated :func:`quantile` in
:mod:`repro.engine.benchrunner` (small benchmark samples) and an
``np.quantile`` ring buffer inside :class:`repro.stream.metrics.
StreamMetrics` (per-window latencies). The serving layer needs the same
machinery a third time (request latencies, batch-size distributions),
so both implementations were factored here and are re-exported from
their original homes.

Two quantile flavors are kept deliberately:

* :func:`quantile` — the benchrunner's pure-Python linear
  interpolation, for tiny samples where importing numpy paths buys
  nothing. Its output is the historical ``BENCH_*.json`` contract.
* :meth:`LatencyReservoir.quantiles` — ``np.quantile`` over the
  retained ring-buffer window, the historical ``StreamMetrics``
  contract.

The regression tests in ``tests/test_metrics_shared.py`` pin both
against verbatim copies of the pre-factoring implementations on fixed
inputs, so neither refactor changed a single reported number.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of a small sample.

    Exact behavior of the pre-factoring benchrunner implementation:
    sort, position ``q * (len - 1)``, convex combination of the two
    bracketing order statistics.
    """
    xs = sorted(float(v) for v in values)
    if not xs:
        raise ValueError("quantile of an empty sample")
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def quantile_labels(qs: Sequence[float]) -> list:
    """``[0.5, 0.95, 0.99] -> ["p50", "p95", "p99"]`` (stable keys)."""
    labels = []
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        scaled = q * 100.0
        labels.append(
            f"p{scaled:g}" if scaled != int(scaled) else f"p{int(scaled)}"
        )
    return labels


class LatencyReservoir:
    """Bounded ring buffer of latency samples with quantile readout.

    Retains the most recent ``capacity`` samples, so a long-running
    service reports *recent* latency, not lifetime. This is the buffer
    that previously lived inside ``StreamMetrics``; quantiles are
    computed with ``np.quantile`` over the retained window, exactly as
    before the factoring.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(
                f"latency_capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._values = np.empty(self.capacity, dtype=float)
        self._count = 0  # total ever recorded

    def record(self, value: float) -> None:
        self._values[self._count % self.capacity] = float(value)
        self._count += 1

    @property
    def count(self) -> int:
        """Total samples ever recorded (not just retained)."""
        return self._count

    @property
    def retained(self) -> int:
        return min(self._count, self.capacity)

    def values(self) -> np.ndarray:
        """The retained window (read-only view semantics: do not mutate)."""
        return self._values[: self.retained]

    def quantiles(self, qs: Sequence[float] = (0.50, 0.95)) -> Dict[str, float]:
        """``{"p50": ..., "p95": ...}`` over the retained window.

        Empty reservoirs report NaN for every requested quantile (the
        historical ``StreamMetrics`` behavior).
        """
        labels = quantile_labels(qs)
        if self.retained == 0:
            return {label: float("nan") for label in labels}
        window = self.values()
        return {
            label: float(np.quantile(window, q))
            for label, q in zip(labels, qs)
        }
