"""Parallel kernel engine: chunked zero-copy kernel evaluation and fan-out.

The engine makes the two costs that dominate every localization and
tracking round — geometry-kernel evaluation (paper Formula 3.4) and the
batched theta solve (Formula 4.1) — hardware-saturating:

* :mod:`repro.engine.kernels` streams candidate pools through a
  broadcast (no ``(m*n, 2)`` materialization), chunked, optionally
  float32 evaluator with a closed-form rectangular ray-exit fast path;
* :mod:`repro.engine.executor` fans chunks, solver row blocks,
  per-user rankings, fingerprint-map cell batches, and cross-session
  drains out over a shared worker pool — with the invariant that
  float64 parallel output is bitwise-equal to serial (disjoint writes,
  no reduction-order changes);
* :mod:`repro.engine.benchrunner` records every perf benchmark into a
  machine-readable ``BENCH_*.json`` trajectory.

See docs/PERFORMANCE.md for knob guidance.
"""

from repro.engine.config import EngineConfig
from repro.engine.executor import Engine, resolve_engine
from repro.engine.kernels import (
    evaluate_geometry_kernels,
    reference_geometry_kernels,
)
from repro.engine.benchrunner import measure, peak_rss_kb, write_bench_json

__all__ = [
    "EngineConfig",
    "Engine",
    "resolve_engine",
    "evaluate_geometry_kernels",
    "reference_geometry_kernels",
    "measure",
    "peak_rss_kb",
    "write_bench_json",
]
