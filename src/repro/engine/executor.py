"""The parallel executor behind every engine-aware hot path.

:class:`Engine` wraps an :class:`~repro.engine.config.EngineConfig`
plus one lazily created worker pool, and exposes exactly two
primitives:

``map(fn, items)``
    Ordered fan-out — results come back in submission order, so a
    caller that consumes them positionally (per-user rankings,
    per-session drains) sees the same data flow as a serial loop.

``run_chunks(total, task, chunk_size=None)``
    Splits ``range(total)`` into contiguous ``[start, stop)`` spans and
    runs ``task(start, stop)`` for each. Tasks write disjoint slices of
    a caller-owned output array; because no two spans overlap and no
    cross-chunk reduction exists, the result is bitwise identical to
    the serial execution regardless of scheduling.

Nesting rule: a task submitted through an Engine must not itself fan
out through the same Engine (a saturated pool waiting on its own
children deadlocks). Engine-aware call sites therefore pass
``engine=None`` to the inner calls they fan out.

Resilience: an Engine built with a :class:`~repro.faults.RetryPolicy`
re-runs failed units (a mapped item, a chunk span) on *transient*
failures — injected faults, backend crashes, ``FloatingPointError`` —
under bounded backoff. Both primitives are retry-safe by construction:
``map`` results are per-item and ``run_chunks`` tasks rewrite their
disjoint spans from scratch, so a retried unit is bitwise-identical to
a first-try success. Exhausted budgets surface as typed
:class:`~repro.errors.RetriesExhausted`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.config import EngineConfig

T = TypeVar("T")
R = TypeVar("R")


class Engine:
    """A reusable parallel execution context.

    Parameters
    ----------
    config:
        Full configuration; mutually exclusive with the keyword
        shortcuts below.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy`. When set, every
        mapped item and every chunk task is re-run under bounded
        backoff on transient failures (see module docstring); when
        ``None`` (default) failures propagate on the first occurrence.
    workers / chunk_size / dtype / backend:
        Shortcuts building an :class:`EngineConfig` in place, e.g.
        ``Engine(workers=4)``.

    The worker pool is created on first parallel use and shared across
    all subsequent calls (one pool per Engine, not per call — pool
    startup is microseconds but it adds up in per-window paths). Use as
    a context manager, or call :meth:`close`, to release the pool;
    a closed Engine silently degrades to inline execution.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        retry_policy=None,
        **overrides,
    ):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides, not both")
        self.config = config
        self.retry_policy = retry_policy
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def chunk_size(self) -> int:
        return self.config.chunk_size

    @property
    def parallel(self) -> bool:
        """Whether this engine will actually fan work out."""
        return self.config.workers >= 1 and not self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(workers={self.config.workers}, "
            f"chunk_size={self.config.chunk_size}, "
            f"dtype={self.config.dtype!r}, backend={self.config.backend!r})"
        )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    def _resilient(self, fn: Callable[..., R], label: str) -> Callable[..., R]:
        """``fn`` wrapped under this engine's retry policy (identity if none)."""
        if self.retry_policy is None:
            return fn
        from repro.faults.retry import call_with_retry

        policy = self.retry_policy

        def wrapped(*args):
            return call_with_retry(
                lambda: fn(*args), policy, label=label
            )

        return wrapped

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in submission order."""
        items = list(items)
        fn = self._resilient(fn, "engine.map item")
        if not self.parallel or len(items) < 2:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def run_chunks(
        self,
        total: int,
        task: Callable[[int, int], None],
        chunk_size: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """Run ``task(start, stop)`` over contiguous spans covering ``total``.

        Returns the spans (mostly useful to tests). ``chunk_size``
        overrides the configured chunk size for this call — the
        fingerprint-map builder passes its block size through here.
        """
        size = self.config.chunk_size if chunk_size is None else int(chunk_size)
        if size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {size}")
        spans = [
            (start, min(start + size, total)) for start in range(0, total, size)
        ]
        task = self._resilient(task, "engine.run_chunks span")
        if not self.parallel or len(spans) < 2:
            for start, stop in spans:
                task(start, stop)
            return spans
        list(self._ensure_pool().map(lambda span: task(span[0], span[1]), spans))
        return spans

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down; the Engine degrades to inline mode."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_SERIAL = Engine()


def resolve_engine(engine: Optional[Engine]) -> Engine:
    """``engine`` or the shared inline (serial) engine."""
    return _SERIAL if engine is None else engine
