"""Shared machine-readable benchmark runner (the perf trajectory).

Every performance benchmark in ``benchmarks/`` funnels its results
through :func:`write_bench_json`, producing one ``BENCH_<name>.json``
per hot path with a stable schema::

    {
      "benchmark": "engine",
      "env": {"cpus": ..., "python": ..., "numpy": ...},
      "records": [ {case record...}, ... ]
    }

so this and every future perf PR appends comparable numbers — the
"benchmark trajectory" the ROADMAP's fast-as-the-hardware-allows goal
is steered by. :func:`measure` is the shared timing core: repeated
wall-clock runs reduced to median/p95 plus the process peak RSS, and
optionally the Python-level peak allocation of one traced run (the
bounded-working-set evidence for the chunked kernel evaluator).
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

# Percentile reduction is shared with the stream/serve metrics layers;
# re-exported here because benchmark modules import it from benchrunner.
from repro.metrics import quantile

__all__ = [
    "peak_rss_kb",
    "quantile",
    "measure",
    "environment",
    "write_bench_json",
]


def peak_rss_kb() -> int:
    """Process high-water resident set size in KiB (Linux semantics)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        rss //= 1024
    return int(rss)


def measure(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    trace_memory: bool = False,
) -> Dict[str, Any]:
    """Time ``fn`` ``repeats`` times; return the reduced record.

    Returns ``median_s``, ``p95_s``, ``min_s``, the raw ``runs_s``
    list, and ``peak_rss_kb``. With ``trace_memory`` one extra
    (untimed) run executes under :mod:`tracemalloc` and the record
    gains ``traced_peak_bytes`` — the Python-allocator high-water mark
    of that run, which includes numpy array buffers and is what bounds
    a chunked evaluator's working set.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(max(0, warmup)):
        fn()
    runs: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - started)
    record: Dict[str, Any] = {
        "runs_s": runs,
        "median_s": quantile(runs, 0.5),
        "p95_s": quantile(runs, 0.95),
        "min_s": min(runs),
        "peak_rss_kb": peak_rss_kb(),
    }
    if trace_memory:
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        record["traced_peak_bytes"] = int(peak)
    return record


def environment() -> Dict[str, Any]:
    """Run metadata that makes BENCH_*.json files comparable.

    ``cpus`` is the machine's logical count; ``cpus_available`` is what
    this process may actually schedule on (CI runners and cgroup limits
    routinely make it smaller — the number that governs engine speedup).
    ``git_commit`` pins the code the numbers were measured at.
    """
    import os
    import subprocess

    import numpy

    try:
        cpus_available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus_available = os.cpu_count()
    try:
        git_commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_commit = None
    return {
        "cpus": os.cpu_count(),
        "cpus_available": cpus_available,
        "git_commit": git_commit,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
    }


def write_bench_json(
    benchmark: str,
    records: Sequence[Dict[str, Any]],
    path: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<benchmark>.json`` (or ``path``) and return the path."""
    out = Path(path) if path else Path(f"BENCH_{benchmark}.json")
    payload: Dict[str, Any] = {
        "benchmark": benchmark,
        "env": environment(),
        "records": list(records),
    }
    if meta:
        payload["meta"] = dict(meta)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return out
