"""Configuration of the parallel kernel engine.

One frozen dataclass carries every knob the hot paths consult: worker
count, kernel chunk size, kernel dtype, and the executor backend. The
config is deliberately immutable — an :class:`~repro.engine.executor.
Engine` is handed to long-lived objects (trackers, sessions, builders)
and mutating knobs mid-flight would make "parallel output is bitwise
equal to serial" unverifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

_DTYPES = ("float64", "float32")
_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the parallel kernel engine.

    Attributes
    ----------
    workers:
        Worker count for fan-out (kernel chunks, solver row chunks,
        per-user rankings, fingerprint-map cell batches, cross-session
        drains). ``0`` runs everything inline on the calling thread —
        the default, and always bitwise-identical to any ``workers >=
        1`` run in float64 because parallel units write disjoint output
        slices and no reduction order changes.
    chunk_size:
        Candidate (sink) rows per kernel-evaluation chunk. Bounds the
        evaluator's working set: one chunk touches
        ``O(chunk_size * sniffers)`` temporaries instead of the full
        ``candidates x sniffers`` pair grid. Also the unit of work the
        executor fans out.
    dtype:
        ``"float64"`` (default) or ``"float32"`` for geometry-kernel
        evaluation. float32 halves kernel memory traffic; the batched
        theta solve always runs in float64, so only the kernel values
        themselves lose precision (see docs/PERFORMANCE.md for the
        observed error envelope).
    backend:
        ``"thread"`` (default) — a shared thread pool; numpy releases
        the GIL in the large vectorized sections, so threads scale on
        multi-core hosts with zero serialization cost. ``"process"`` —
        a fork-based process pool writing kernel blocks into POSIX
        shared memory; only worthwhile for very large pools on hosts
        where the thread path is GIL-bound. Falls back to ``thread``
        where ``fork`` is unavailable.
    watchdog_s:
        Process-backend watchdog: the longest one fork-pool evaluation
        may take before the executor declares a dead or hung worker and
        raises :class:`~repro.errors.WorkerCrashed` instead of waiting
        on ``join()`` forever (a killed worker's chunk is silently lost
        by ``multiprocessing.Pool``). ``None`` disables the watchdog
        (the pre-resilience behavior; only sensible in debuggers).
    """

    workers: int = 0
    chunk_size: int = 4096
    dtype: str = "float64"
    backend: str = "thread"
    watchdog_s: Optional[float] = 60.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.dtype not in _DTYPES:
            raise ConfigurationError(
                f"dtype must be one of {_DTYPES}, got {self.dtype!r}"
            )
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.watchdog_s is not None and self.watchdog_s <= 0:
            raise ConfigurationError(
                f"watchdog_s must be positive or None, got {self.watchdog_s}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)
