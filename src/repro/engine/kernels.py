"""Chunked, zero-copy geometry-kernel evaluation.

The Formula-3.4 geometry kernel ``g = (l^2 - d^2) / (2 d)`` over an
``(m sinks, n nodes)`` pair grid is the single hottest operation of the
reproduction: candidate search evaluates it for thousands of sinks per
sweep, the SMC tracker repeats that per user per window, and the
fingerprint-map builder runs it over every grid cell. The original
implementation (kept below as :func:`reference_geometry_kernels`, the
equivalence oracle and benchmark baseline) materialized the flattened
pair grid — ``np.repeat``/``np.tile`` of two ``(m*n, 2)`` coordinate
arrays plus the same-sized direction/unit temporaries — before ray
casting.

This module replaces that with:

* **broadcasting** — per-component ``(chunk, n)`` arithmetic, never an
  ``(m*n, 2)`` coordinate materialization;
* a **closed-form rectangular ray exit** — for axis-aligned rectangles
  the exit wall is determined by the direction signs, so the slab loop
  over four walls collapses to one division per axis (bitwise-equal to
  the reference slab method for in-field sinks, see the note at
  :func:`_fill_rect_chunk`);
* **chunking** — sinks stream through the evaluator ``chunk_size`` rows
  at a time, bounding the working set to ``O(chunk_size * n)``
  temporaries regardless of pool size, and giving the executor its
  unit of fan-out (chunks write disjoint output rows, so any worker
  count is bitwise-identical to serial);
* an optional **float32 mode** that halves memory traffic for
  huge pools (the theta solve downstream stays float64).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.executor import Engine, resolve_engine
from repro.errors import ConfigurationError, FaultInjected, WorkerCrashed
from repro.faults.plan import should_fire
from repro.geometry.field import Field, RectangularField

_EPS = 1e-12


# ----------------------------------------------------------------------
# Reference implementation (pre-engine), kept as oracle + baseline.
# ----------------------------------------------------------------------
def reference_geometry_kernels(
    field: Field,
    node_positions: np.ndarray,
    sinks: np.ndarray,
    d_floor: float,
) -> np.ndarray:
    """The original ``DiscreteFluxModel.geometry_kernels`` implementation.

    Flattens the (sink, node) pair grid into one ``(m*n, 2)`` ray-cast
    batch via ``np.repeat``/``np.tile``. Retained verbatim as the
    specification oracle for the equivalence tests and as the serial
    baseline every ``BENCH_engine.json`` speedup is measured against.
    """
    sinks = np.asarray(sinks, dtype=float)
    if sinks.ndim == 1:
        sinks = sinks[None, :]
    sinks = field.clip(sinks)
    node_positions = np.asarray(node_positions, dtype=float)
    m, n = sinks.shape[0], node_positions.shape[0]
    origins = np.repeat(sinks, n, axis=0)  # (m*n, 2)
    nodes = np.tile(node_positions, (m, 1))  # (m*n, 2)
    directions = nodes - origins
    norms = np.hypot(directions[:, 0], directions[:, 1])
    safe = np.maximum(norms, _EPS)
    unit = directions / safe[:, None]
    unit[norms < _EPS] = (1.0, 0.0)  # degenerate: node at the sink
    l = field.ray_exit_distance(origins, unit)
    d = np.maximum(norms, d_floor)
    kernels = np.maximum((l * l - d * d) / (2.0 * d), 0.0)
    return kernels.reshape(m, n)


# ----------------------------------------------------------------------
# Chunk fillers.
# ----------------------------------------------------------------------
def _axis_exit(u: np.ndarray, o: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Smallest positive slab crossing along one axis, ``inf`` if none.

    Closed form of the reference slab loop restricted to one axis: a
    positive direction component can only cross the high wall at
    ``t > 0`` (the low-wall crossing is behind the origin for in-field
    sinks) and vice versa, so the four-candidate scan collapses to one
    sign-selected division. The reference validity rule ``isfinite(t)
    and t > eps`` is applied to the selected candidate, which keeps the
    result bitwise-equal to the reference for every in-field origin.
    """
    scalar = u.dtype.type
    wall = np.where(u > 0.0, scalar(hi), np.where(u < 0.0, scalar(lo), scalar(np.nan)))
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (wall - o) / u
    invalid = ~(np.isfinite(t) & (t > _EPS))
    if invalid.any():
        t[invalid] = np.inf
    return t


def _fill_rect_chunk(
    field: RectangularField,
    nodes: np.ndarray,
    d_floor: float,
    sinks: np.ndarray,
    out: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """Closed-form kernels for sink rows ``[start, stop)`` of a rectangle."""
    one = out.dtype.type(1.0)
    zero = out.dtype.type(0.0)
    sx = sinks[start:stop, 0:1]  # (c, 1)
    sy = sinks[start:stop, 1:2]
    dx = nodes[None, :, 0] - sx  # (c, n) — broadcast, no pair materialization
    dy = nodes[None, :, 1] - sy
    norms = np.hypot(dx, dy)
    safe = np.maximum(norms, _EPS)
    np.divide(dx, safe, out=dx)  # dx/dy now hold the unit direction
    np.divide(dy, safe, out=dy)
    degenerate = norms < _EPS
    if degenerate.any():
        dx[degenerate] = one
        dy[degenerate] = zero
    tx = _axis_exit(dx, sx, field.xmin, field.xmax)
    ty = _axis_exit(dy, sy, field.ymin, field.ymax)
    l = np.minimum(tx, ty, out=tx)
    d = np.maximum(norms, d_floor, out=norms)
    np.multiply(l, l, out=l)  # l^2
    np.multiply(d, d, out=dy)  # d^2 (dy scratch is free now)
    np.subtract(l, dy, out=l)  # l^2 - d^2
    np.multiply(d, 2.0, out=d)
    np.divide(l, d, out=l)
    block = out[start:stop]
    np.maximum(l, zero, out=block)
    if not np.all(np.isfinite(block)):
        # Unreachable-boundary pairs (sink within eps of a wall looking
        # along it); the reference raises here — we define them to
        # contribute no flux instead.
        block[~np.isfinite(block)] = zero


def _fill_generic_chunk(
    field: Field,
    nodes: np.ndarray,
    d_floor: float,
    sinks: np.ndarray,
    out: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """Fallback for non-rectangular fields: chunked reference ray cast.

    Uses the field's own ``ray_exit_distance`` (same operations as the
    reference, hence bitwise-equal), but only ever materializes the
    ``(chunk * n, 2)`` slice of the pair grid.
    """
    chunk = sinks[start:stop]
    c, n = chunk.shape[0], nodes.shape[0]
    directions = (nodes[None, :, :] - chunk[:, None, :]).reshape(c * n, 2)
    norms = np.hypot(directions[:, 0], directions[:, 1])
    safe = np.maximum(norms, _EPS)
    unit = directions / safe[:, None]
    unit[norms < _EPS] = (1.0, 0.0)
    origins = np.repeat(chunk, n, axis=0)
    l = field.ray_exit_distance(
        origins.astype(float, copy=False), unit.astype(float, copy=False)
    ).astype(out.dtype, copy=False)
    d = np.maximum(norms, d_floor)
    out[start:stop] = np.maximum((l * l - d * d) / (2.0 * d), 0.0).reshape(c, n)


def _fill_span(
    field: Field,
    nodes: np.ndarray,
    d_floor: float,
    sinks: np.ndarray,
    out: np.ndarray,
    start: int,
    stop: int,
) -> None:
    if should_fire("engine.kernel.transient") is not None:
        raise FaultInjected(
            f"engine.kernel.transient: kernel chunk [{start}, {stop}) failed"
        )
    if isinstance(field, RectangularField):
        _fill_rect_chunk(field, nodes, d_floor, sinks, out, start, stop)
    else:
        _fill_generic_chunk(field, nodes, d_floor, sinks, out, start, stop)


# ----------------------------------------------------------------------
# Process backend: fork workers filling a shared-memory block.
# ----------------------------------------------------------------------
def _process_worker(payload) -> None:  # pragma: no cover - exercised via subprocess
    import os
    import time
    from multiprocessing import shared_memory

    # Fork children inherit the armed fault plan; firings counted here
    # never propagate back to the parent's counters (documented in
    # repro.faults.plan), so crash/hang faults repeat across retries —
    # recovery from them is the serve layer's serial fallback.
    spec = should_fire("engine.worker.crash")
    if spec is not None:
        os._exit(1)
    spec = should_fire("engine.worker.hang")
    if spec is not None:
        time.sleep(spec.delay_s)

    shm_name, shape, dtype, field, nodes, d_floor, sinks, start, stop = payload
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        _fill_span(field, nodes, d_floor, sinks, out, start, stop)
    finally:
        shm.close()


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _fill_processes(
    field: Field,
    nodes: np.ndarray,
    d_floor: float,
    sinks: np.ndarray,
    out: np.ndarray,
    chunk_size: int,
    workers: int,
    watchdog_s: Optional[float] = None,
) -> None:
    import multiprocessing
    from multiprocessing import shared_memory

    total = sinks.shape[0]
    shm = shared_memory.SharedMemory(create=True, size=max(out.nbytes, 1))
    try:
        shared = np.ndarray(out.shape, dtype=out.dtype, buffer=shm.buf)
        spans = [
            (start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)
        ]
        payloads = [
            (
                shm.name, out.shape, out.dtype.str, field, nodes, d_floor,
                sinks, start, stop,
            )
            for start, stop in spans
        ]
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=workers)
        try:
            # A worker killed mid-task (OOM, segfault, SIGKILL) silently
            # loses its chunk and a plain pool.map joins forever; the
            # watchdog turns both death and hang into a typed error.
            result = pool.map_async(_process_worker, payloads)
            try:
                result.get(timeout=watchdog_s)
            except multiprocessing.TimeoutError:
                pool.terminate()
                raise WorkerCrashed(
                    f"process backend: {len(spans)} kernel chunk(s) not "
                    f"completed within watchdog_s={watchdog_s}s — a worker "
                    "died or hung"
                ) from None
        finally:
            pool.terminate()
            pool.join()
        out[:] = shared
    finally:
        shm.close()
        shm.unlink()


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def evaluate_geometry_kernels(
    field: Field,
    node_positions: np.ndarray,
    sinks: np.ndarray,
    d_floor: float,
    engine: Optional[Engine] = None,
    out: Optional[np.ndarray] = None,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Stacked geometry kernels ``(m, n)`` for many candidate sinks.

    Parameters
    ----------
    field / node_positions / d_floor:
        The deployment geometry (see
        :class:`~repro.fluxmodel.discrete.DiscreteFluxModel`).
    sinks:
        ``(m, 2)`` candidate sink positions (``(2,)`` is promoted);
        out-of-field sinks are clipped onto the field first.
    engine:
        Parallel engine; ``None`` evaluates inline with the default
        chunking and float64. The engine's dtype selects float32 mode.
    out:
        Optional preallocated ``(m, n)`` output (its dtype wins over the
        engine dtype); chunks are written straight into it — the
        fingerprint-map builder passes its signature matrix here.
    chunk_size:
        Per-call override of the engine's chunk size.
    """
    eng = resolve_engine(engine)
    cfg: EngineConfig = eng.config
    sinks = np.asarray(sinks, dtype=float)
    if sinks.ndim == 1:
        sinks = sinks[None, :]
    if sinks.ndim != 2 or sinks.shape[1] != 2:
        raise ConfigurationError(f"sinks must be (m, 2), got {sinks.shape}")
    sinks = field.clip(sinks)
    node_positions = np.asarray(node_positions, dtype=float)
    m, n = sinks.shape[0], node_positions.shape[0]

    if out is not None:
        if out.shape != (m, n):
            raise ConfigurationError(
                f"out must have shape ({m}, {n}), got {out.shape}"
            )
        dtype = out.dtype
    else:
        dtype = cfg.np_dtype
        out = np.empty((m, n), dtype=dtype)
    sinks = np.ascontiguousarray(sinks, dtype=dtype)
    nodes = np.ascontiguousarray(node_positions, dtype=dtype)
    floor = dtype.type(d_floor)

    size = cfg.chunk_size if chunk_size is None else int(chunk_size)
    if size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {size}")

    if (
        cfg.backend == "process"
        and eng.parallel
        and m > size
        and _fork_available()
    ):
        def _run_processes() -> None:
            _fill_processes(
                field, nodes, floor, sinks, out, size, cfg.workers,
                watchdog_s=cfg.watchdog_s,
            )

        if eng.retry_policy is None:
            _run_processes()
        else:
            from repro.faults.retry import call_with_retry

            call_with_retry(
                _run_processes, eng.retry_policy,
                label="engine.process_backend evaluation",
            )
        return out

    eng.run_chunks(
        m,
        lambda start, stop: _fill_span(
            field, nodes, floor, sinks, out, start, stop
        ),
        chunk_size=size,
    )
    return out
