"""Core contribution #2: Sequential Monte Carlo tracking (Section IV.B-E).

Implements the paper's Algorithm 4.1: per-user weighted sample sets
are predicted forward with a uniform-disc motion kernel (Formula 4.2),
filtered against each flux observation by NLS composition ranking, and
re-weighted by recursive importance sampling (Formula 4.3), with
asynchronous per-user updates when a user's best-fit stretch vanishes.
"""

from repro.smc.samples import UserSamples
from repro.smc.prediction import predict_samples
from repro.smc.weighting import importance_weights, effective_sample_size
from repro.smc.tracker import (
    SequentialMonteCarloTracker,
    TrackerConfig,
    TrackerStep,
)
from repro.smc.identity import IdentityAwareTracker
from repro.smc.adaptive import adaptive_prediction_count
from repro.smc.resampling import resample, systematic_resample
from repro.smc.association import (
    assignment_errors,
    identity_consistency,
)

__all__ = [
    "UserSamples",
    "predict_samples",
    "importance_weights",
    "effective_sample_size",
    "SequentialMonteCarloTracker",
    "TrackerConfig",
    "TrackerStep",
    "IdentityAwareTracker",
    "adaptive_prediction_count",
    "resample",
    "systematic_resample",
    "assignment_errors",
    "identity_consistency",
]
