"""The Sequential Monte Carlo tracker — paper Algorithm 4.1.

Per observation window:

1. **Prediction** — for each user, draw N candidate positions from
   discs of radius ``v_max * (t - t_last)`` around the previous
   samples (Formula 4.2).
2. **Filtering** — rank the candidates by NLS objective against the
   flux observation (coordinate-descent composition search; see
   :mod:`repro.fingerprint.nls`) and keep the top M per user.
3. **Asynchronous updating** — a user whose best-fit ``s/r``
   vanishes did not collect in this window: its samples and
   ``t_last`` stay untouched, so its next prediction radius grows.
4. **Importance sampling** — surviving samples get weights
   ``w_parent / (objective + eps)``, normalized (Formula 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, TrackingError
from repro.fingerprint.nls import coordinate_descent, forward_select_active
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry.field import Field
from repro.smc.prediction import predict_samples
from repro.smc.samples import UserSamples
from repro.smc.weighting import importance_weights
from repro.traffic.measurement import FluxObservation
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass
class TrackerConfig:
    """Knobs of Algorithm 4.1 (defaults follow the paper's Section V.B).

    Attributes
    ----------
    prediction_count:
        N — predictive samples drawn per user per round (paper: 1000).
    keep_count:
        M — samples kept after filtering (paper: 10).
    max_speed:
        v_max — the only mobility knowledge assumed (paper: 5 per
        detection interval).
    theta_floor:
        Best-fit ``s/r`` at or below this means "user did not collect
        this round" (the paper's ``s_i/r -> 0`` test).
    activity_tolerance:
        Minimum relative fit improvement a user's inclusion must buy
        in the forward-selection activity test
        (:func:`repro.fingerprint.nls.forward_select_active`); users
        below it are deemed silent this round.
    d_floor:
        Near-sink clamp of the flux model.
    sweeps:
        Coordinate-descent sweeps per filtering phase.
    likelihood_epsilon:
        Epsilon of the reciprocal-objective likelihood proxy.
    resampling:
        Parent-selection scheme for prediction (see
        :mod:`repro.smc.resampling`).
    adaptive_predictions:
        Scale the per-round prediction count to the posterior spread
        and prediction radius (:mod:`repro.smc.adaptive`);
        ``prediction_count`` becomes the upper bound.
    reseed_after_misses:
        Fingerprint-map recovery (requires a map attached to the
        tracker): a user inactive for this many consecutive flux-
        bearing windows has a degenerate sample set — its cloud no
        longer covers the user — and is re-seeded from the map's top
        signature matches instead of waiting for the prediction disc
        to swallow the whole field. ``0`` disables the trigger.
    """

    prediction_count: int = 1000
    keep_count: int = 10
    max_speed: float = 5.0
    theta_floor: float = 1e-3
    activity_tolerance: float = 0.15
    d_floor: float = 1.0
    sweeps: int = 3
    likelihood_epsilon: float = 1e-9
    resampling: str = "multinomial"
    adaptive_predictions: bool = False
    reseed_after_misses: int = 0

    def __post_init__(self) -> None:
        if self.resampling not in ("multinomial", "systematic", "residual"):
            raise ConfigurationError(
                f"unknown resampling {self.resampling!r}"
            )
        if self.prediction_count < 1:
            raise ConfigurationError("prediction_count must be >= 1")
        if not 1 <= self.keep_count <= self.prediction_count:
            raise ConfigurationError(
                "keep_count must be in [1, prediction_count], got "
                f"{self.keep_count} vs {self.prediction_count}"
            )
        check_positive("max_speed", self.max_speed)
        check_positive("theta_floor", self.theta_floor)
        check_positive("activity_tolerance", self.activity_tolerance, strict=False)
        check_positive("d_floor", self.d_floor)
        if self.sweeps < 1:
            raise ConfigurationError("sweeps must be >= 1")
        check_positive("likelihood_epsilon", self.likelihood_epsilon)
        if self.reseed_after_misses < 0:
            raise ConfigurationError(
                f"reseed_after_misses must be >= 0, got {self.reseed_after_misses}"
            )


@dataclass
class TrackerStep:
    """Outcome of one observation round.

    Attributes
    ----------
    time:
        Window time of the observation.
    estimates:
        ``(K, 2)`` per-user position estimates (weighted sample means)
        *after* this round — stale for users that were inactive.
    active:
        ``(K,)`` booleans: whether each user's samples were updated.
    objective:
        Best NLS objective of the round's incumbent composition
        (NaN when every user was inactive).
    sample_sets:
        Snapshot of each user's current samples.
    reseeded:
        ``(K,)`` booleans: whether each user's sample set was replaced
        by fingerprint-map matches this round (degenerate weights or
        the consecutive-miss threshold). All-False when no map is
        attached.
    """

    time: float
    estimates: np.ndarray
    active: np.ndarray
    objective: float
    sample_sets: List[UserSamples]
    reseeded: Optional[np.ndarray] = None


class SequentialMonteCarloTracker:
    """Tracks K mobile users from a stream of flux observations.

    Parameters
    ----------
    field:
        Deployment field.
    sniffer_positions:
        ``(n, 2)`` positions of the sniffed sensors; observations must
        carry readings aligned to this set.
    user_count:
        K — may be chosen conservatively large (surplus users simply
        stay inactive).
    config:
        Algorithm knobs; defaults follow the paper.
    start_time:
        Initialization time ``t_last = 0`` of Algorithm 4.1.
    fingerprint_map:
        Optional :class:`repro.fpmap.FingerprintMap` built for this
        exact deployment; enables the degenerate-sample recovery path
        (see :meth:`attach_map`). Validated on attach.
    engine:
        Optional :class:`repro.engine.Engine` used by every filtering
        round: prediction-pool kernel evaluation runs chunk-parallel
        and the coordinate-descent solves split across workers. The
        sampling phases consume RNG serially regardless, so a tracker
        with an engine follows the exact trajectory of one without
        (float64 bitwise).
    """

    def __init__(
        self,
        field: Field,
        sniffer_positions: np.ndarray,
        user_count: int,
        config: Optional[TrackerConfig] = None,
        start_time: float = 0.0,
        rng: RandomState = None,
        fingerprint_map=None,
        engine=None,
    ):
        if user_count < 1:
            raise ConfigurationError(f"user_count must be >= 1, got {user_count}")
        self.field = field
        self.config = config if config is not None else TrackerConfig()
        self.user_count = user_count
        self.model = DiscreteFluxModel(
            field, np.asarray(sniffer_positions, dtype=float),
            d_floor=self.config.d_floor,
        )
        self._rng = as_generator(rng)
        self.engine = engine
        # Initialization: M random positions, equal weights (Algorithm 4.1).
        self.samples: List[UserSamples] = [
            UserSamples.uniform_prior(
                field, self.config.keep_count, self._rng, t0=start_time
            )
            for _ in range(user_count)
        ]
        self.history: List[TrackerStep] = []
        # Consecutive flux-bearing windows each user sat out; drives the
        # map-reseed trigger. Silent (zero-flux) windows don't count.
        self.miss_counts = np.zeros(user_count, dtype=np.int64)
        self.fingerprint_map = None
        if fingerprint_map is not None:
            self.attach_map(fingerprint_map)

    # ------------------------------------------------------------------
    def attach_map(self, fingerprint_map) -> None:
        """Attach (or with ``None`` detach) a fingerprint map.

        The map must have been built for *this* deployment — same
        field, same sniffer positions, same ``d_floor`` — or a
        :class:`~repro.errors.ConfigurationError` is raised; a map of a
        stale sniffer set would reseed users onto wrong signatures.
        """
        if fingerprint_map is not None:
            fingerprint_map.validate_against(
                self.field, self.model.node_positions, self.config.d_floor
            )
        self.fingerprint_map = fingerprint_map

    # ------------------------------------------------------------------
    def step(self, observation: FluxObservation) -> TrackerStep:
        """Process one flux observation window (one iteration of Alg. 4.1)."""
        cfg = self.config
        t = float(observation.time)
        objective = FluxObjective.from_observation(self.model, observation)

        # Fast path: a silent window (zero flux) updates nobody.
        if float(np.nansum(np.abs(observation.values))) <= 0.0:
            step = self._inactive_step(t)
            self.history.append(step)
            return step

        # Prediction phase.
        pools: List[np.ndarray] = []
        parent_idx: List[np.ndarray] = []
        radii: List[float] = []
        for user in range(self.user_count):
            dt = max(t - self.samples[user].t_last, 1e-9)
            radius = cfg.max_speed * dt
            if cfg.adaptive_predictions:
                from repro.smc.adaptive import adaptive_prediction_count

                count = adaptive_prediction_count(
                    self.samples[user],
                    radius,
                    min_count=min(100, cfg.prediction_count),
                    max_count=cfg.prediction_count,
                )
            else:
                count = cfg.prediction_count
            positions, parents = predict_samples(
                self.field,
                self.samples[user],
                radius,
                count,
                self._rng,
                method=cfg.resampling,
            )
            pools.append(positions)
            parent_idx.append(parents)
            radii.append(radius)

        # Filtering phase: composition search + per-user rankings.
        outcome = coordinate_descent(
            objective, pools, rng=self._rng, sweeps=cfg.sweeps,
            engine=self.engine,
        )

        # Asynchronous updating: decide who actually collected. The
        # paper's test is "best fit s/r -> 0"; operationally a user is
        # active only if *adding* it to the model improves the fit
        # substantially (see forward_select_active), plus the absolute
        # theta floor.
        # Use the objective's model: it is restricted to the non-NaN
        # sniffers when readings dropped out, and the activity test must
        # compare kernels and target over the same node set.
        incumbent_positions = np.stack(
            [pools[u][outcome.best_indices[u]] for u in range(self.user_count)]
        )
        incumbent_kernels = objective.model.geometry_kernels(incumbent_positions)
        active_mask, pruned_thetas, _ = forward_select_active(
            objective, incumbent_kernels, min_improvement=cfg.activity_tolerance
        )
        active = np.zeros(self.user_count, dtype=bool)
        reseeded = np.zeros(self.user_count, dtype=bool)
        for user in range(self.user_count):
            if not active_mask[user] or pruned_thetas[user] <= cfg.theta_floor:
                continue  # user silent this round
            active[user] = True
            objs = outcome.per_user_objectives[user]
            keep = np.argsort(objs)[: cfg.keep_count]
            if self.fingerprint_map is not None:
                # Recovery trigger (a): the raw importance mass
                # underflowed — every surviving sample descends from
                # zero-weight parents or has an unusable likelihood, so
                # Formula 4.3 would renormalize noise. Restart the
                # user's posterior from the map instead.
                likelihood = 1.0 / (objs[keep] + cfg.likelihood_epsilon)
                raw_mass = float(
                    np.sum(
                        self.samples[user].weights[parent_idx[user][keep]]
                        * likelihood
                    )
                )
                if raw_mass <= 0.0 or not np.isfinite(raw_mass):
                    self.samples[user] = self._reseed_from_map(
                        observation.values, t
                    )
                    reseeded[user] = True
                    self.miss_counts[user] = 0
                    continue
            weights = importance_weights(
                self.samples[user].weights,
                parent_idx[user][keep],
                objs[keep],
                epsilon=cfg.likelihood_epsilon,
            )
            self.samples[user] = UserSamples(
                positions=pools[user][keep],
                weights=weights,
                t_last=t,
            )

        # Recovery trigger (b): a user who sat out too many consecutive
        # flux-bearing windows has drifted out of its own sample cloud;
        # its growing prediction disc eventually covers the whole field,
        # which is just expensive uniform re-initialization. Reseeding
        # from the map's signature matches restarts it where the
        # evidence points.
        for user in range(self.user_count):
            if active[user] or reseeded[user]:
                self.miss_counts[user] = 0
                continue
            self.miss_counts[user] += 1
            if (
                self.fingerprint_map is not None
                and cfg.reseed_after_misses > 0
                and self.miss_counts[user] >= cfg.reseed_after_misses
            ):
                self.samples[user] = self._reseed_from_map(
                    observation.values, t
                )
                reseeded[user] = True
                self.miss_counts[user] = 0

        estimates = np.stack([s.estimate() for s in self.samples])
        step = TrackerStep(
            time=t,
            estimates=estimates,
            active=active,
            objective=float(outcome.best_objective),
            sample_sets=[s for s in self.samples],
            reseeded=reseeded,
        )
        self.history.append(step)
        return step

    def _reseed_from_map(self, values: np.ndarray, t: float) -> UserSamples:
        """Replace a degenerate sample set with top map matches.

        The new samples are the ``keep_count`` best-matching cells for
        the window's flux vector, weighted by reciprocal match residual
        (the same likelihood proxy as Formula 4.3), with ``t_last``
        reset so the next prediction disc is local again.
        """
        fmap = self.fingerprint_map
        match = fmap.match(
            np.asarray(values, dtype=float),
            k=min(self.config.keep_count, fmap.cell_count),
        )
        weights = 1.0 / (match.residuals + self.config.likelihood_epsilon)
        return UserSamples(
            positions=match.positions.copy(),
            weights=weights,
            t_last=float(t),
        )

    def _inactive_step(self, t: float) -> TrackerStep:
        estimates = np.stack([s.estimate() for s in self.samples])
        return TrackerStep(
            time=t,
            estimates=estimates,
            active=np.zeros(self.user_count, dtype=bool),
            objective=float("nan"),
            sample_sets=[s for s in self.samples],
            reseeded=np.zeros(self.user_count, dtype=bool),
        )

    # ------------------------------------------------------------------
    def run(self, observations: Sequence[FluxObservation]) -> List[TrackerStep]:
        """Process a time-ordered observation stream; returns all steps."""
        if not observations:
            raise TrackingError("run() needs at least one observation")
        times = [o.time for o in observations]
        if any(b < a for a, b in zip(times, times[1:])):
            raise TrackingError("observations must be time-ordered")
        return [self.step(o) for o in observations]

    def estimates(self) -> np.ndarray:
        """Current ``(K, 2)`` per-user position estimates."""
        return np.stack([s.estimate() for s in self.samples])
