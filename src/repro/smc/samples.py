"""Weighted sample sets representing one user's position posterior."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class UserSamples:
    """The duples ``<P_t(i), w_t(i)>`` of paper Section IV.D for one user.

    Attributes
    ----------
    positions:
        ``(M, 2)`` sample positions approximating the posterior.
    weights:
        ``(M,)`` normalized importance weights.
    t_last:
        Time of this user's last accepted update (``t_last`` in
        Algorithm 4.1); drives the growing prediction radius for
        asynchronously silent users.
    """

    positions: np.ndarray
    weights: np.ndarray
    t_last: float

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.weights = np.asarray(self.weights, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ConfigurationError(
                f"positions must be (M, 2), got {self.positions.shape}"
            )
        if self.weights.shape != (self.positions.shape[0],):
            raise ConfigurationError(
                f"weights {self.weights.shape} must match positions "
                f"{self.positions.shape}"
            )
        if np.any(self.weights < 0) or not np.all(np.isfinite(self.weights)):
            raise ConfigurationError("weights must be finite and non-negative")
        total = float(self.weights.sum())
        if total <= 0:
            raise ConfigurationError("weights must not sum to zero")
        self.weights = self.weights / total

    @property
    def count(self) -> int:
        return self.positions.shape[0]

    def estimate(self) -> np.ndarray:
        """Weighted mean position — the point estimate reported per round."""
        return (self.weights[:, None] * self.positions).sum(axis=0)

    def spread(self) -> float:
        """Weighted RMS distance of the samples from the estimate.

        Shrinks as the posterior concentrates; a convergence
        diagnostic for the Fig. 7 case studies.
        """
        est = self.estimate()
        d2 = np.sum((self.positions - est[None, :]) ** 2, axis=1)
        return float(np.sqrt((self.weights * d2).sum()))

    @classmethod
    def uniform_prior(
        cls, field, count: int, rng: np.random.Generator, t0: float = 0.0
    ) -> "UserSamples":
        """Initialization of Algorithm 4.1: M uniform samples, equal weights."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        return cls(
            positions=field.sample_uniform(count, rng),
            weights=np.full(count, 1.0 / count),
            t_last=float(t0),
        )
