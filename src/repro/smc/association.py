"""Identity association and mixing diagnostics.

Network flux carries no identities, so when two users' trajectories
cross, the tracker may swap their sample sets (paper Fig. 7d): the
*locations* stay accurate while the *labels* mix. Accuracy is
therefore measured on the error-minimizing assignment per round, and
:func:`identity_consistency` quantifies how often the assignment
permutation changes — the paper's mixing phenomenon.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def assignment_errors(
    estimates: np.ndarray, truths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-user errors under the error-minimizing estimate<->truth matching.

    Returns ``(errors, permutation)`` where ``permutation[j]`` is the
    truth index matched to estimate ``j``.
    """
    from scipy.optimize import linear_sum_assignment

    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape or estimates.ndim != 2 or estimates.shape[1] != 2:
        raise ConfigurationError(
            f"estimates {estimates.shape} and truths {truths.shape} must both be (K, 2)"
        )
    cost = np.linalg.norm(estimates[:, None, :] - truths[None, :, :], axis=2)
    rows, cols = linear_sum_assignment(cost)
    perm = np.empty(estimates.shape[0], dtype=np.int64)
    perm[rows] = cols
    return cost[rows, cols], perm


def identity_consistency(permutations: Sequence[np.ndarray]) -> float:
    """Fraction of consecutive rounds whose assignment did not change.

    1.0 means identities never mixed; values below 1.0 indicate label
    swaps (expected when trajectories cross — paper Fig. 7d).
    """
    perms = [np.asarray(p, dtype=np.int64) for p in permutations]
    if len(perms) < 2:
        return 1.0
    stable = sum(
        1 for a, b in zip(perms, perms[1:]) if np.array_equal(a, b)
    )
    return stable / (len(perms) - 1)


def tracking_errors_over_time(
    steps, trajectories: Sequence[np.ndarray], times: Sequence[float] = None
) -> np.ndarray:
    """Per-round assignment errors for a tracker history.

    Parameters
    ----------
    steps:
        List of :class:`~repro.smc.tracker.TrackerStep`.
    trajectories:
        Per-user ``(rounds, 2)`` true positions, one row per step (or,
        with ``times`` given, timestamped paths to interpolate).
    times:
        Optional per-trajectory-row timestamps (shared by all users);
        when given, truths are interpolated at each step's time.

    Returns
    -------
    ``(rounds, K)`` error matrix.
    """
    K = len(trajectories)
    trajs = [np.asarray(tr, dtype=float) for tr in trajectories]
    out = np.empty((len(steps), K))
    for i, step in enumerate(steps):
        if times is None:
            truths = np.stack([tr[i] for tr in trajs])
        else:
            tt = np.asarray(times, dtype=float)
            truths = np.stack(
                [
                    [np.interp(step.time, tt, tr[:, 0]), np.interp(step.time, tt, tr[:, 1])]
                    for tr in trajs
                ]
            )
        errors, _ = assignment_errors(step.estimates, truths)
        out[i] = errors
    return out
