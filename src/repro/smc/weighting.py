"""Importance weighting — paper Formula 4.3.

``w_t(i)' = w_{t-1}(parent(i)) * P(o_t | P_t(i))`` followed by
normalization. The observation likelihood is approximated by the
reciprocal of the minimum NLS objective achieved by sample ``i``
("a smaller deviation between the predicted and observed network flux
values implies a larger observation probability").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def importance_weights(
    parent_weights: np.ndarray,
    parents: np.ndarray,
    objectives: np.ndarray,
    epsilon: float = 1e-9,
) -> np.ndarray:
    """Compute normalized recursive importance weights.

    Parameters
    ----------
    parent_weights:
        ``(M,)`` previous-round weights.
    parents:
        ``(N,)`` parent index of each new sample.
    objectives:
        ``(N,)`` minimum NLS objective of each new sample; the
        likelihood proxy is ``1 / (objective + epsilon)``.
    epsilon:
        Guards against division by zero for perfect fits.

    Returns
    -------
    ``(N,)`` weights summing to 1.
    """
    parent_weights = np.asarray(parent_weights, dtype=float)
    parents = np.asarray(parents, dtype=np.int64)
    objectives = np.asarray(objectives, dtype=float)
    if parents.shape != objectives.shape:
        raise ConfigurationError(
            f"parents {parents.shape} and objectives {objectives.shape} must match"
        )
    if np.any(objectives < 0):
        raise ConfigurationError("objectives must be non-negative")
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    likelihood = 1.0 / (objectives + epsilon)
    raw = parent_weights[parents] * likelihood
    total = float(raw.sum())
    if total <= 0 or not np.isfinite(total):
        # Degenerate round: fall back to likelihood-only weights.
        raw = likelihood
        total = float(raw.sum())
    return raw / total


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``1 / sum(w^2)`` — degeneracy diagnostic."""
    weights = np.asarray(weights, dtype=float)
    total = float(weights.sum())
    if total <= 0:
        raise ConfigurationError("weights must not sum to zero")
    w = weights / total
    return float(1.0 / np.sum(w * w))
