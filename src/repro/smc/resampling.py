"""Resampling strategies for the prediction phase.

The paper draws predictive samples from the kept set proportionally to
importance weights (multinomial resampling). Multinomial resampling
adds unnecessary Monte Carlo variance; *systematic* resampling is the
standard lower-variance alternative, and *residual* resampling sits in
between. These are exposed as parent-selection strategies for
:func:`repro.smc.prediction.predict_samples` and compared in the SMC
ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def multinomial_resample(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """I.i.d. parent draws — the paper's implicit scheme."""
    weights = _check_weights(weights)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    return rng.choice(weights.size, size=count, p=weights)


def systematic_resample(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Systematic (stratified comb) resampling.

    One uniform offset positions a comb of ``count`` equally spaced
    pointers over the CDF; each pointer selects a parent. Every parent
    with weight ``w`` is chosen either ``floor(w*count)`` or
    ``ceil(w*count)`` times — minimal variance among unbiased schemes.
    """
    weights = _check_weights(weights)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    positions = (rng.uniform() + np.arange(count)) / count
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0  # guard against rounding
    return np.searchsorted(cumulative, positions).astype(np.int64)


def residual_resample(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Residual resampling: deterministic integer parts + multinomial rest."""
    weights = _check_weights(weights)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    scaled = weights * count
    integer_counts = np.floor(scaled).astype(np.int64)
    deterministic = np.repeat(np.arange(weights.size), integer_counts)
    remainder = count - int(integer_counts.sum())
    if remainder > 0:
        residuals = scaled - integer_counts
        total = residuals.sum()
        if total <= 0:
            extra = rng.choice(weights.size, size=remainder, p=weights)
        else:
            extra = rng.choice(
                weights.size, size=remainder, p=residuals / total
            )
        out = np.concatenate([deterministic, extra])
    else:
        out = deterministic[:count]
    rng.shuffle(out)
    return out


_METHODS = {
    "multinomial": multinomial_resample,
    "systematic": systematic_resample,
    "residual": residual_resample,
}


def resample(
    method: str, weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Dispatch by method name ('multinomial' | 'systematic' | 'residual')."""
    if method not in _METHODS:
        raise ConfigurationError(
            f"unknown resampling method {method!r}; expected one of "
            f"{sorted(_METHODS)}"
        )
    return _METHODS[method](weights, count, rng)


def _check_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigurationError("weights must be finite and non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ConfigurationError("weights must not sum to zero")
    return weights / total
