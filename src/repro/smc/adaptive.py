"""Adaptive prediction budgets (KLD-sampling-style).

The paper draws a fixed N = 1000 predictive samples per user per
round. Once a user's posterior has concentrated, far fewer samples
cover the reachable disc at the same resolution. This helper picks a
per-round prediction count from the current sample spread and the
prediction radius, bounded to ``[min_count, max_count]`` — the SMC
cost knob measured in the adaptive-budget bench.

Heuristic: predictions must cover a disc of radius ``R + sigma``
(reachable set around a posterior of spread ``sigma``) at a fixed
spatial resolution ``sigma_floor``:

    N ≈ ceil(density * (R + sigma)^2 / sigma_floor^2)

clipped to the bounds. A broad posterior or a long silent period
(large ``R = v_max * dt``) automatically gets more samples; a
converged posterior with a short step gets few.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.smc.samples import UserSamples
from repro.util.validation import check_positive


def adaptive_prediction_count(
    samples: UserSamples,
    radius: float,
    min_count: int = 100,
    max_count: int = 1000,
    density: float = 4.0,
    sigma_floor: float = 0.5,
) -> int:
    """Prediction count proportional to the search-area/resolution ratio."""
    check_positive("radius", radius)
    check_positive("density", density)
    check_positive("sigma_floor", sigma_floor)
    if not 1 <= min_count <= max_count:
        raise ConfigurationError(
            f"need 1 <= min_count <= max_count, got {min_count}, {max_count}"
        )
    sigma = samples.spread()
    ratio = (radius + sigma) ** 2 / sigma_floor**2
    count = int(np.ceil(density * ratio))
    return int(np.clip(count, min_count, max_count))
