"""Prediction phase — the uniform-disc motion kernel of Formula 4.2.

With only a maximum-speed bound ``v_max`` known, the transition
density from a previous sample is uniform over the disc of radius
``v_max * dt`` around it (zero beyond). Predicted samples that land
outside the field are clipped onto it — users cannot leave the field.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.smc.samples import UserSamples
from repro.util.validation import check_positive


def predict_samples(
    field: Field,
    samples: UserSamples,
    radius: float,
    count: int,
    rng: np.random.Generator,
    method: str = "multinomial",
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` predictive samples from the disc kernel.

    Parent samples are chosen *proportionally to their weights* (the
    importance-sampling refinement of Section IV.D: heavier samples
    seed more predictions), then each prediction is uniform in the
    disc of radius ``radius`` around its parent.

    Parameters
    ----------
    method:
        Parent-selection scheme — ``"multinomial"`` (the paper's
        implicit choice), ``"systematic"``, or ``"residual"``; see
        :mod:`repro.smc.resampling`.

    Returns
    -------
    ``(positions, parents)`` — ``(count, 2)`` predicted positions and
    the ``(count,)`` parent sample indices (needed for the recursive
    weight update of Formula 4.3).
    """
    from repro.smc.resampling import resample

    check_positive("radius", radius)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    parents = resample(method, samples.weights, count, rng)
    radii = radius * np.sqrt(rng.uniform(size=count))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
    offsets = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    positions = samples.positions[parents] + offsets
    return field.clip(positions), parents
