"""Identity-aware tracking extension.

The paper observes (Fig. 7d) that when two users' trajectories cross,
the tracker keeps their *locations* but may swap their *identities*:
network flux carries no labels. It does, however, carry one more
per-user invariant the base algorithm throws away — the traffic
stretch ``s_j`` is a property of the *user* (their data interest) and
stays stable across rounds, while ``r`` is a property of the network.
The fitted factor ``theta_j = s_j / r`` is therefore a per-user
fingerprint.

:class:`IdentityAwareTracker` wraps the base SMC tracker and, after
each round, considers permuting the active slots' sample sets: if
reassigning sample sets to slots makes the round's fitted thetas agree
better with each slot's running stretch estimate — and the permuted
sample sets remain compatible with each slot's motion bound — the swap
is applied. Flux explains the *set* of positions, not their labels, so
permutations never change the fit quality; they only re-label it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.smc.tracker import (
    SequentialMonteCarloTracker,
    TrackerConfig,
    TrackerStep,
)
from repro.traffic.measurement import FluxObservation
from repro.util.rng import RandomState
from repro.util.validation import check_in_range, check_positive


@dataclass
class _SlotFingerprint:
    """Running stretch estimate (EW mean + variance) for one slot."""

    theta_mean: float = 0.0
    theta_var: float = 0.0
    observations: int = 0

    def update(self, theta: float, alpha: float) -> None:
        if self.observations == 0:
            self.theta_mean = theta
            self.theta_var = 0.0
        else:
            delta = theta - self.theta_mean
            self.theta_mean += alpha * delta
            # Exponentially weighted variance (West 1979 style).
            self.theta_var = (1 - alpha) * (self.theta_var + alpha * delta**2)
        self.observations += 1

    @property
    def confident(self) -> bool:
        return self.observations >= 3

    @property
    def theta_std(self) -> float:
        return float(np.sqrt(max(self.theta_var, 0.0)))


class IdentityAwareTracker:
    """SMC tracker + stretch-fingerprint identity maintenance.

    Drop-in alternative to
    :class:`~repro.smc.tracker.SequentialMonteCarloTracker`: same
    constructor signature plus two knobs.

    Parameters
    ----------
    ewma_alpha:
        Smoothing of each slot's running stretch estimate.
    max_permutation_size:
        Permutations are searched only among this many simultaneously
        active slots (cost grows factorially; crossings involve 2-3).
    swap_margin:
        A permutation is applied only if it reduces the stretch
        disagreement by at least this *fraction* — round-level theta
        fits are noisy (model error), so marginal improvements are
        more likely noise than a real label swap.
    """

    def __init__(
        self,
        field,
        sniffer_positions,
        user_count: int,
        config: Optional[TrackerConfig] = None,
        start_time: float = 0.0,
        ewma_alpha: float = 0.3,
        max_permutation_size: int = 4,
        swap_margin: float = 0.5,
        rng: RandomState = None,
    ):
        check_in_range("ewma_alpha", ewma_alpha, 0.0, 1.0, inclusive=(False, True))
        check_in_range("swap_margin", swap_margin, 0.0, 1.0)
        if max_permutation_size < 2:
            raise ConfigurationError(
                f"max_permutation_size must be >= 2, got {max_permutation_size}"
            )
        self.base = SequentialMonteCarloTracker(
            field,
            sniffer_positions,
            user_count,
            config=config,
            start_time=start_time,
            rng=rng,
        )
        self.ewma_alpha = float(ewma_alpha)
        self.max_permutation_size = int(max_permutation_size)
        self.swap_margin = float(swap_margin)
        self.fingerprints = [_SlotFingerprint() for _ in range(user_count)]
        self.swap_count = 0

    # Expose the base tracker's read API.
    @property
    def user_count(self) -> int:
        return self.base.user_count

    @property
    def history(self) -> List[TrackerStep]:
        return self.base.history

    def estimates(self) -> np.ndarray:
        return self.base.estimates()

    # ------------------------------------------------------------------
    def step(self, observation: FluxObservation) -> TrackerStep:
        """One round: base SMC step, then identity correction."""
        prev_estimates = self.base.estimates()
        prev_t_last = [s.t_last for s in self.base.samples]
        step = self.base.step(observation)
        active = np.flatnonzero(step.active)
        if active.size >= 2 and active.size <= self.max_permutation_size:
            round_thetas = self._round_thetas(observation, active)
            if round_thetas is not None:
                self._maybe_permute(
                    active, round_thetas, prev_estimates, prev_t_last, step
                )
        # Update fingerprints with the (possibly re-labelled) thetas.
        thetas = self._round_thetas(observation, active)
        if thetas is not None:
            for slot, theta in zip(active, thetas):
                self.fingerprints[slot].update(float(theta), self.ewma_alpha)
        return step

    def run(self, observations) -> List[TrackerStep]:
        return [self.step(o) for o in observations]

    # ------------------------------------------------------------------
    def _round_thetas(
        self, observation: FluxObservation, active: np.ndarray
    ) -> Optional[np.ndarray]:
        """Fit thetas for the active slots' current estimates."""
        if active.size == 0:
            return None
        from repro.fingerprint.objective import FluxObjective, solve_thetas

        objective = FluxObjective.from_observation(self.base.model, observation)
        positions = np.stack(
            [self.base.samples[slot].estimate() for slot in active]
        )
        kernels = objective.model.geometry_kernels(positions)
        thetas, _ = solve_thetas(
            objective._weight_kernels(kernels), objective._weighted_target
        )
        return thetas

    def _maybe_permute(
        self,
        active: np.ndarray,
        round_thetas: np.ndarray,
        prev_estimates: np.ndarray,
        prev_t_last: List[float],
        step: TrackerStep,
    ) -> None:
        """Re-label active slots' sample sets to match stretch history."""
        confident = [self.fingerprints[slot].confident for slot in active]
        if not all(confident):
            return
        targets = np.array(
            [self.fingerprints[slot].theta_mean for slot in active]
        )
        # Stretch fingerprints only discriminate when the users' running
        # stretch estimates are separated beyond their own noise level;
        # otherwise round-level theta noise would drive spurious swaps.
        spread = targets.max() - targets.min()
        noise = float(
            np.mean([self.fingerprints[slot].theta_std for slot in active])
        )
        if spread < max(2.0 * noise, 0.25 * max(float(targets.mean()), 1e-9)):
            return
        radius_slack = 1.5  # motion-feasibility slack factor

        def feasible(perm) -> bool:
            # Slot `active[i]` receives the sample set currently held by
            # slot `active[perm[i]]`; its new estimate must be reachable
            # from its own previous estimate within the speed bound.
            for i, j in enumerate(perm):
                slot = active[i]
                source = active[j]
                dt = max(step.time - prev_t_last[slot], 1e-9)
                reach = self.base.config.max_speed * dt * radius_slack
                new_est = self.base.samples[source].estimate()
                if np.linalg.norm(new_est - prev_estimates[slot]) > reach:
                    return False
            return True

        def cost(perm) -> float:
            return float(
                np.sum(np.abs(round_thetas[list(perm)] - targets))
            )

        identity = tuple(range(active.size))
        identity_cost = cost(identity)
        # Require a clear margin: round-level theta fits are noisy.
        threshold = (1.0 - self.swap_margin) * identity_cost
        best_perm, best_cost = identity, identity_cost
        for perm in itertools.permutations(range(active.size)):
            if perm == identity:
                continue
            c = cost(perm)
            if c < min(best_cost - 1e-9, threshold) and feasible(perm):
                best_perm, best_cost = perm, c

        if best_perm != identity:
            self.swap_count += 1
            originals = [self.base.samples[slot] for slot in active]
            for i, j in enumerate(best_perm):
                self.base.samples[active[i]] = originals[j]
            step.estimates[active] = np.stack(
                [self.base.samples[slot].estimate() for slot in active]
            )
