"""Injectable monotonic time for deadlines, backoff, and chaos tests.

Every resilience decision in the library — request-deadline expiry,
retry backoff sleeps, the backend governor's cool-down — reads time
through this module instead of calling :func:`time.monotonic`
directly. In production the installed clock *is* the system clock (one
attribute read of overhead); tests and chaos harnesses install a
:class:`FakeClock` and drive time by hand, which makes "the deadline
lapsed between queue purge and dispatch" a deterministic one-liner
instead of a ``sleep``-and-hope race.

Only *decision* time goes through here. Condition-variable waits and
thread joins keep real ``time.monotonic`` deadlines — a fake clock
must never be able to hang a real thread.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Iterator, Optional


class SystemClock:
    """The real monotonic clock (default)."""

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class FakeClock:
    """A hand-driven clock: ``sleep`` advances it instead of blocking.

    Thread-safe; chaos tests share one instance between the code under
    test and the assertions.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()
        self.sleeps: list = []  # every sleep requested, in order

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.advance(max(0.0, float(seconds)))

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new instant."""
        with self._lock:
            self._now += float(seconds)
            return self._now


SYSTEM = SystemClock()
_clock = SYSTEM


def current_clock():
    """The clock resilience code should consult (system unless installed)."""
    return _clock


def install(clock) -> None:
    """Replace the module clock (``None`` restores the system clock)."""
    global _clock
    _clock = SYSTEM if clock is None else clock


@contextmanager
def installed(clock) -> Iterator[object]:
    """Scope a clock installation; always restores the previous clock."""
    global _clock
    previous = _clock
    install(clock)
    try:
        yield _clock
    finally:
        _clock = previous


def monotonic() -> float:
    """Decision-time ``monotonic()`` through the installed clock."""
    return _clock.monotonic()


def sleep(seconds: float, clock: Optional[object] = None) -> None:
    """Sleep on the given clock (installed clock when ``None``)."""
    (_clock if clock is None else clock).sleep(seconds)
