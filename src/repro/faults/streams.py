"""Observation-stream fault injection: stalls, duplicates, torn windows.

The paper's attack setting (§IV.C–E) already assumes degraded inputs —
lossy sniffer traffic, missed windows — and the streaming layer's
skip-and-count contract is built for them. These injectors produce the
degradations a real sniffer feed exhibits, *between* the source and the
session, so the chaos harness can prove the contract holds:

``stream.source.stall``
    The feed goes quiet for ``delay_s`` before the next window (a
    congested collection tree, a wedged collector).
``stream.source.duplicate``
    One window is delivered twice (an at-least-once transport). The
    second copy violates monotonic time and must be skipped-and-counted
    as ``out_of_order``, leaving tracker state untouched.
``stream.source.torn``
    A window arrives truncated to half its sniffer readings (a torn
    packet). The session must skip-and-count it as ``arity_mismatch``;
    the original window is lost — by design the SMC tracker absorbs the
    gap with a wider prediction disc.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.faults import clock as _clock
from repro.faults.plan import active_plan, should_fire
from repro.traffic.measurement import FluxObservation


def torn_observation(observation: FluxObservation) -> FluxObservation:
    """A truncated copy: the first half of the sniffer readings only."""
    keep = max(1, observation.sniffers.shape[0] // 2)
    return FluxObservation(
        time=float(observation.time),
        sniffers=observation.sniffers[:keep].copy(),
        values=observation.values[:keep].copy(),
        raw_values=(
            None
            if observation.raw_values is None
            else observation.raw_values[:keep].copy()
        ),
    )


def wrap_observation_stream(
    iterator: Iterable[FluxObservation],
) -> Iterable[FluxObservation]:
    """Route a stream through the armed fault plan (identity when disarmed).

    Checked once at wrap time: arming a plan *after* the stream started
    does not retroactively inject (the pump holds the raw iterator).
    """
    if active_plan() is None:
        return iterator
    return _inject(iter(iterator))


def _inject(iterator: Iterator[FluxObservation]) -> Iterator[FluxObservation]:
    for observation in iterator:
        spec = should_fire("stream.source.stall")
        if spec is not None:
            _clock.sleep(spec.delay_s)
        spec = should_fire("stream.source.torn")
        if spec is not None:
            yield torn_observation(observation)
            continue  # the intact window is lost with the torn packet
        yield observation
        spec = should_fire("stream.source.duplicate")
        if spec is not None:
            yield observation
