"""repro.faults — deterministic fault injection and resilience primitives.

The production layers built in PRs 1–4 (streaming, fingerprint map,
parallel engine, batched serving) are exercised under *failure* through
this package: seeded :class:`FaultPlan`\\ s fire at named injection
sites wired into the engine's process backend, kernel evaluation,
stream sources, checkpoint persistence, and the serve scheduler;
:class:`RetryPolicy` bounds the recovery attempts those layers make;
and the injectable :mod:`clock <repro.faults.clock>` makes every
deadline and backoff decision testable without real sleeps.

Quick chaos run::

    from repro.faults import FaultPlan, FaultSpec, injected

    plan = FaultPlan(
        [FaultSpec("serve.batch.fuse", times=1),
         FaultSpec("checkpoint.partial_write", times=1)],
        seed=7,
    )
    with injected(plan):
        ...  # drive the service; retries absorb both faults
    print(plan.summary())

Disarmed (the default), every fault point costs a single ``None``
check — see ``tests/chaos`` for the invariants this package enforces:
exactly one typed reply per request, checkpoints absent or
bitwise-resumable, retried float64 results bitwise-identical to the
no-fault run.
"""

from repro.errors import (
    EngineError,
    FaultInjected,
    RetriesExhausted,
    WorkerCrashed,
)
from repro.faults import clock
from repro.faults.clock import FakeClock, SystemClock
from repro.faults.plan import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    arm,
    disarm,
    injected,
    should_fire,
)
from repro.faults.retry import (
    TRANSIENT_ERRORS,
    RetryPolicy,
    call_with_retry,
)
from repro.faults.streams import torn_observation, wrap_observation_stream

__all__ = [
    "KNOWN_SITES",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "EngineError",
    "WorkerCrashed",
    "RetriesExhausted",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "call_with_retry",
    "arm",
    "disarm",
    "active_plan",
    "injected",
    "should_fire",
    "clock",
    "SystemClock",
    "FakeClock",
    "torn_observation",
    "wrap_observation_stream",
]
