"""Bounded retries with exponential backoff and seeded jitter.

:class:`RetryPolicy` is a frozen description — attempts, backoff curve,
jitter band — and :func:`call_with_retry` is the one executor every
retrying call site shares (the engine's kernel evaluation, the
checkpoint writer, the serve scheduler's fused pass). Backoff sleeps go
through the injected clock (:mod:`repro.faults.clock`), so chaos tests
retry "for seconds" in microseconds, and jitter draws from a caller-
seeded RNG — a retried computation is exactly as deterministic as its
first attempt.

When the budget runs out the caller gets a typed
:class:`~repro.errors.RetriesExhausted` with the final failure chained
as ``__cause__`` — never a bare swallowed exception, never an unbounded
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.errors import (
    ConfigurationError,
    EngineError,
    FaultInjected,
    RetriesExhausted,
)
from repro.faults import clock as _clock

T = TypeVar("T")

#: Default exception classes worth retrying: injected faults and the
#: transient numerical/backend failures they imitate. Deliberately NOT
#: ``Exception`` — retrying a programming error just repeats it.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    FaultInjected,
    EngineError,
    FloatingPointError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**attempt`` capped.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (``1`` = no retry at all).
    base_delay_s / multiplier / max_delay_s:
        Backoff curve between attempts; the delay before retry ``k``
        (0-based) is ``min(base * multiplier**k, max_delay)``.
    jitter:
        Fractional jitter band: the delay is scaled by a uniform draw
        from ``[1 - jitter, 1 + jitter]`` (``0`` = deterministic
        spacing). The draw comes from the RNG handed to
        :func:`call_with_retry`, never from wall-clock entropy.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                f"max_delay_s ({self.max_delay_s}) must be >= base_delay_s "
                f"({self.base_delay_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay_s(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based)."""
        raw = min(
            self.base_delay_s * self.multiplier**attempt, self.max_delay_s
        )
        if self.jitter > 0 and rng is not None:
            raw *= float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return raw


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Optional[Tuple[Type[BaseException], ...]] = None,
    clock=None,
    rng: Optional[np.random.Generator] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    label: str = "operation",
) -> T:
    """Run ``fn`` under ``policy``; raise :class:`RetriesExhausted` on defeat.

    Parameters
    ----------
    fn:
        Zero-argument callable. It must be idempotent — every retrying
        call site in this library recomputes into caller-owned buffers
        or rebuilds its temp file from scratch.
    retry_on:
        Exception classes worth another attempt; anything else
        propagates immediately. Defaults to the transient set (injected
        faults, engine/backend failures, ``FloatingPointError``,
        ``OSError``).
    clock:
        Sleep target for backoff; defaults to the installed faults
        clock.
    rng:
        Jitter stream. ``None`` uses deterministic (jitter-free)
        spacing, keeping default behavior reproducible.
    on_retry:
        Observer called ``on_retry(attempt, exc)`` before each backoff —
        the metrics hook (e.g. ``ServerMetrics.record_retry``).
    label:
        Human-readable operation name for the exhaustion message.
    """
    if retry_on is None:
        retry_on = TRANSIENT_ERRORS
    if clock is None:
        clock = _clock.current_clock()
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            clock.sleep(policy.delay_s(attempt, rng))
    raise RetriesExhausted(
        f"{label} failed after {policy.max_attempts} attempts "
        f"({type(last).__name__}: {last})"
    ) from last
