"""Deterministic fault-injection plans and the fault-point registry.

A :class:`FaultPlan` is a seeded description of *which* failure sites
fire, *how often*, and *when* — the chaos harness's steering wheel. The
library's hot paths carry named **fault points** (``should_fire(site)``
calls) at the places production failures actually happen:

======================== ==================================================
site                      effect at the call site
======================== ==================================================
``engine.worker.crash``   fork-backend worker ``os._exit``\\ s mid-chunk
``engine.worker.hang``    fork-backend worker sleeps ``delay_s`` mid-chunk
``engine.kernel.transient`` kernel chunk raises :class:`FaultInjected`
                          (a transient numerical failure; retryable)
``stream.source.stall``   observation stream sleeps ``delay_s``
``stream.source.duplicate`` one window is delivered twice
``stream.source.torn``    a window arrives truncated (half its sniffers)
``checkpoint.partial_write`` checkpoint temp file is written half, then
                          the write raises (a torn write / full disk)
``checkpoint.fsync``      checkpoint fsync raises before the rename
``serve.batch.fuse``      the scheduler's fused kernel pass raises
                          mid-batch
``fleet.worker.exit``     a fleet worker process ``os._exit``\\ s on
                          request receipt (killed between track steps)
``gateway.client.slow``   the gateway stalls ``delay_s`` before writing a
                          reply frame (a slow-consuming client)
``gateway.conn.half_open`` the gateway aborts a connection's transport on
                          frame receipt without a FIN (half-open peer;
                          in-flight replies are discarded and counted)
``gateway.frame.torn``    a reply frame is written half, then the
                          connection is torn down mid-frame
======================== ==================================================

Determinism and overhead are the two contracts:

* **Deterministic** — each site draws from its own RNG stream spawned
  from ``(plan seed, crc32(site))``, and activation counting is
  per-site, so the same plan against the same workload fires at the
  same opportunities every run. A chaos failure reproduces from just
  the plan JSON (``repro serve --fault-plan plan.json``).
* **Zero overhead disarmed** — a disarmed process pays one module
  attribute read and a ``None`` check per fault point, nothing else.
  No plan object, no RNG, no lock is ever touched.

Fork caveat: process-backend workers inherit the armed plan by
``fork``, so worker-side sites (``engine.worker.*``) fire in the child
with the child's *copy* of the counters — the parent's
``fired``/``opportunities`` tallies do not include child-side
activations, and every retry's fresh pool inherits the same pre-fire
state. Worker-crash faults are therefore persistent (each retry crashes
again) — which is exactly what the serial-fallback path is for.
"""

from __future__ import annotations

import json
import threading
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

_PathLike = Union[str, Path]

#: Every injection site wired into the library. Plans naming a site
#: outside this set fail construction (typos must not silently disarm
#: a chaos run); pass ``strict=False`` for experimental custom sites.
KNOWN_SITES = (
    "engine.worker.crash",
    "engine.worker.hang",
    "engine.kernel.transient",
    "stream.source.stall",
    "stream.source.duplicate",
    "stream.source.torn",
    "checkpoint.partial_write",
    "checkpoint.fsync",
    "serve.batch.fuse",
    "fleet.worker.exit",
    "gateway.client.slow",
    "gateway.conn.half_open",
    "gateway.frame.torn",
)


@dataclass(frozen=True)
class FaultSpec:
    """When one site fires.

    Attributes
    ----------
    site:
        Fault-point name (see :data:`KNOWN_SITES`).
    times:
        Maximum activations before the site goes quiet (``None`` =
        unlimited). ``times=1`` is the classic *transient* fault: fail
        once, succeed on retry.
    probability:
        Chance of firing at each opportunity, drawn from the site's
        seeded stream (``1.0`` = every opportunity, the default).
    delay_s:
        Duration parameter for stall/hang-style sites.
    skip:
        Let this many opportunities pass before the site may fire —
        places a fault mid-run instead of at the first touch.
    """

    site: str
    times: Optional[int] = 1
    probability: float = 1.0
    delay_s: float = 0.0
    skip: int = 0

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("fault site must be non-empty")
        if self.times is not None and self.times < 1:
            raise ConfigurationError(
                f"times must be >= 1 or None, got {self.times}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )
        if self.skip < 0:
            raise ConfigurationError(f"skip must be >= 0, got {self.skip}")


class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s with firing state.

    Thread-safe: fault points are hit from scheduler threads, stream
    pumps, and engine workers concurrently; all decision state mutates
    under one lock.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        seed: int = 0,
        strict: bool = True,
    ):
        self.seed = int(seed)
        self.strict = bool(strict)
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"specs must be FaultSpec, got {type(spec).__name__}"
                )
            if spec.site in self._specs:
                raise ConfigurationError(
                    f"duplicate spec for site {spec.site!r}"
                )
            if strict and spec.site not in KNOWN_SITES:
                raise ConfigurationError(
                    f"unknown fault site {spec.site!r}; known sites: "
                    f"{', '.join(KNOWN_SITES)} (strict=False allows custom)"
                )
            self._specs[spec.site] = spec
        self._lock = threading.Lock()
        self._fired: Dict[str, int] = {site: 0 for site in self._specs}
        self._opportunities: Dict[str, int] = {site: 0 for site in self._specs}
        self._rngs: Dict[str, np.random.Generator] = {
            site: np.random.default_rng(
                np.random.SeedSequence([self.seed, zlib.crc32(site.encode())])
            )
            for site, spec in self._specs.items()
            if spec.probability < 1.0
        }

    # ------------------------------------------------------------------
    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def spec(self, site: str) -> Optional[FaultSpec]:
        return self._specs.get(site)

    def should_fire(self, site: str) -> Optional[FaultSpec]:
        """Decide one opportunity at ``site``; returns the spec if it fires."""
        spec = self._specs.get(site)
        if spec is None:
            return None
        with self._lock:
            opportunity = self._opportunities[site]
            self._opportunities[site] = opportunity + 1
            if opportunity < spec.skip:
                return None
            if spec.times is not None and self._fired[site] >= spec.times:
                return None
            if spec.probability < 1.0:
                if float(self._rngs[site].random()) >= spec.probability:
                    return None
            self._fired[site] += 1
            return spec

    def fired(self, site: str) -> int:
        with self._lock:
            return self._fired.get(site, 0)

    def opportunities(self, site: str) -> int:
        with self._lock:
            return self._opportunities.get(site, 0)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """``{site: {"fired": n, "opportunities": m}}`` (JSON-ready)."""
        with self._lock:
            return {
                site: {
                    "fired": self._fired[site],
                    "opportunities": self._opportunities[site],
                }
                for site in self._specs
            }

    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        payload = {
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self._specs.values()],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, strict: bool = True) -> "FaultPlan":
        try:
            payload = json.loads(text)
            specs = [FaultSpec(**raw) for raw in payload.get("specs", [])]
            seed = int(payload.get("seed", 0))
        except (ValueError, TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"cannot parse fault plan JSON ({type(exc).__name__}: {exc})"
            ) from exc
        return cls(specs, seed=seed, strict=strict)

    def save(self, path: _PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: _PathLike, strict: bool = True) -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan {path}: {exc}"
            ) from exc
        try:
            return cls.from_json(text, strict=strict)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, sites={list(self._specs)})"


# ----------------------------------------------------------------------
# Global arming. One plan per process; fault points consult it through
# the module-level `should_fire`, whose disarmed cost is a None check.
# ----------------------------------------------------------------------
_armed: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process's active fault plan."""
    global _armed
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"arm() needs a FaultPlan, got {type(plan).__name__}"
        )
    _armed = plan
    return plan


def disarm() -> None:
    global _armed
    _armed = None


def active_plan() -> Optional[FaultPlan]:
    return _armed


@contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for a scope (``None`` = no-op, for optional wiring)."""
    global _armed
    previous = _armed
    if plan is not None:
        arm(plan)
    try:
        yield plan
    finally:
        _armed = previous


def should_fire(site: str) -> Optional[FaultSpec]:
    """The fault-point call: ``None`` unless an armed plan fires here."""
    plan = _armed
    if plan is None:
        return None
    return plan.should_fire(site)
