"""Mobility substrate: trajectories and movement models for the evaluation."""

from repro.mobility.trajectory import Trajectory
from repro.mobility.models import (
    crossing_trajectories,
    linear_trajectory,
    random_waypoint_trajectory,
    random_walk_trajectory,
)

__all__ = [
    "Trajectory",
    "linear_trajectory",
    "random_waypoint_trajectory",
    "random_walk_trajectory",
    "crossing_trajectories",
]
