"""Timestamped trajectories with interpolation and speed checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Trajectory:
    """A user's timestamped path.

    Attributes
    ----------
    times:
        ``(m,)`` strictly increasing timestamps.
    positions:
        ``(m, 2)`` positions at those timestamps; movement between
        samples is linear.
    """

    times: np.ndarray
    positions: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        positions = np.asarray(self.positions, dtype=float)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "positions", positions)
        if times.ndim != 1 or times.size < 1:
            raise ConfigurationError(f"times must be 1-D non-empty, got {times.shape}")
        if positions.shape != (times.size, 2):
            raise ConfigurationError(
                f"positions must be ({times.size}, 2), got {positions.shape}"
            )
        if times.size > 1 and np.any(np.diff(times) <= 0):
            raise ConfigurationError("times must be strictly increasing")

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def length(self) -> float:
        """Total path length."""
        if self.times.size < 2:
            return 0.0
        seg = np.diff(self.positions, axis=0)
        return float(np.hypot(seg[:, 0], seg[:, 1]).sum())

    def at(self, t: float) -> np.ndarray:
        """Linearly interpolated position at time ``t`` (clamped to ends)."""
        return np.array(
            [
                np.interp(t, self.times, self.positions[:, 0]),
                np.interp(t, self.times, self.positions[:, 1]),
            ]
        )

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Positions at many times, shape ``(len(times), 2)``."""
        times = np.asarray(times, dtype=float)
        return np.column_stack(
            [
                np.interp(times, self.times, self.positions[:, 0]),
                np.interp(times, self.times, self.positions[:, 1]),
            ]
        )

    def max_speed(self) -> float:
        """Largest segment speed — must not exceed the tracker's v_max."""
        if self.times.size < 2:
            return 0.0
        seg = np.diff(self.positions, axis=0)
        dist = np.hypot(seg[:, 0], seg[:, 1])
        dt = np.diff(self.times)
        return float(np.max(dist / dt))

    def compress_time(self, factor: float) -> "Trajectory":
        """Divide the timeline by ``factor`` (the paper compresses x100)."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        t0 = self.times[0]
        return Trajectory(
            times=t0 + (self.times - t0) / factor, positions=self.positions.copy()
        )

    def shift_time(self, offset: float) -> "Trajectory":
        return Trajectory(times=self.times + offset, positions=self.positions.copy())

    def segment(self, start: float, end: float) -> "Trajectory":
        """The sub-trajectory covering ``[start, end]`` (end-point interpolated)."""
        if end <= start:
            raise ConfigurationError(f"empty segment [{start}, {end}]")
        if start < self.times[0] or end > self.times[-1]:
            raise ConfigurationError(
                f"segment [{start}, {end}] outside trajectory span "
                f"[{self.times[0]}, {self.times[-1]}]"
            )
        inside = (self.times > start) & (self.times < end)
        times = np.concatenate([[start], self.times[inside], [end]])
        return Trajectory(times=times, positions=self.sample(times))
