"""Movement-model generators for the tracking evaluation (Section V.B).

The paper restricts each user's speed below ``v_max = 5`` per
detection interval and drives users along straight or gently turning
trajectories (Fig. 7), including the deliberately crossing pair of
Fig. 7(d).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.mobility.trajectory import Trajectory
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


def linear_trajectory(
    start: np.ndarray, end: np.ndarray, rounds: int, delta_t: float = 1.0
) -> Trajectory:
    """Constant-velocity straight line sampled at ``rounds`` instants."""
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    check_positive("delta_t", delta_t)
    start = np.asarray(start, dtype=float).reshape(2)
    end = np.asarray(end, dtype=float).reshape(2)
    fractions = np.linspace(0.0, 1.0, rounds)[:, None]
    positions = start[None, :] * (1 - fractions) + end[None, :] * fractions
    times = np.arange(rounds, dtype=float) * delta_t
    return Trajectory(times=times, positions=positions)


def random_waypoint_trajectory(
    field: Field,
    rounds: int,
    speed: float,
    delta_t: float = 1.0,
    rng: RandomState = None,
) -> Trajectory:
    """Random-waypoint motion: walk toward random targets at fixed speed."""
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    check_positive("speed", speed)
    check_positive("delta_t", delta_t)
    gen = as_generator(rng)
    pos = field.sample_uniform(1, gen)[0]
    target = field.sample_uniform(1, gen)[0]
    positions = [pos.copy()]
    for _ in range(rounds - 1):
        step = speed * delta_t
        to_target = target - pos
        dist = float(np.hypot(*to_target))
        while dist < step:
            pos = target
            step -= dist
            target = field.sample_uniform(1, gen)[0]
            to_target = target - pos
            dist = float(np.hypot(*to_target))
        pos = pos + to_target / dist * step
        positions.append(pos.copy())
    times = np.arange(rounds, dtype=float) * delta_t
    return Trajectory(times=times, positions=np.asarray(positions))


def random_walk_trajectory(
    field: Field,
    rounds: int,
    max_step: float,
    delta_t: float = 1.0,
    rng: RandomState = None,
) -> Trajectory:
    """Uniform-disc random walk (each step uniform within ``max_step``).

    Exactly matches the tracker's weak motion model (Formula 4.2) —
    the best case for prediction; waypoint motion is the harder,
    structured case.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    check_positive("max_step", max_step)
    check_positive("delta_t", delta_t)
    gen = as_generator(rng)
    pos = field.sample_uniform(1, gen)[0]
    positions = [pos.copy()]
    for _ in range(rounds - 1):
        radius = max_step * np.sqrt(gen.uniform())
        angle = gen.uniform(0, 2 * np.pi)
        pos = field.clip(pos + radius * np.array([np.cos(angle), np.sin(angle)]))
        positions.append(np.asarray(pos).reshape(2).copy())
    times = np.arange(rounds, dtype=float) * delta_t
    return Trajectory(times=times, positions=np.asarray(positions))


def crossing_trajectories(
    field: Field, rounds: int, delta_t: float = 1.0, margin_fraction: float = 0.2
) -> Tuple[Trajectory, Trajectory]:
    """Two straight trajectories that intersect mid-field (Fig. 7d).

    User A walks one diagonal, user B the other, meeting at the field
    center at the middle round — the identity-mixing stress case.
    """
    if rounds < 2:
        raise ConfigurationError(f"rounds must be >= 2, got {rounds}")
    xmin, ymin, xmax, ymax = field.bounding_box
    mx = (xmax - xmin) * margin_fraction
    my = (ymax - ymin) * margin_fraction
    a = linear_trajectory(
        (xmin + mx, ymin + my), (xmax - mx, ymax - my), rounds, delta_t
    )
    b = linear_trajectory(
        (xmin + mx, ymax - my), (xmax - mx, ymin + my), rounds, delta_t
    )
    return a, b
