"""ASCII line/CDF plots (paper Figs. 3a, 6, 8, 10 as text)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.stats import empirical_cdf


def render_series(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more (x, y) series on shared axes.

    Each series gets the first character of its name as glyph.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 8 or height < 4:
        raise ConfigurationError("plot too small")

    all_x = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    if all_x.size == 0:
        raise ConfigurationError("series are empty")
    xlo, xhi = float(all_x.min()), float(all_x.max())
    ylo, yhi = float(all_y.min()), float(all_y.max())
    xspan = max(xhi - xlo, 1e-12)
    yspan = max(yhi - ylo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for name, (xs, ys) in series.items():
        glyph = name[0]
        xs = np.asarray(xs, float)
        ys = np.asarray(ys, float)
        if xs.shape != ys.shape:
            raise ConfigurationError(f"series {name!r}: x/y length mismatch")
        for x, y in zip(xs, ys):
            col = int(np.clip((x - xlo) / xspan * (width - 1), 0, width - 1))
            row = int(np.clip((y - ylo) / yspan * (height - 1), 0, height - 1))
            grid[height - 1 - row][col] = glyph

    lines = ["".join(row) for row in grid]
    top = f"{yhi:.3g}"
    bottom = f"{ylo:.3g}"
    body = "\n".join(
        (top if i == 0 else bottom if i == height - 1 else "").rjust(8)
        + " |" + line
        for i, line in enumerate(lines)
    )
    axis = " " * 9 + "+" + "-" * width
    xaxis = " " * 10 + f"{xlo:.3g}".ljust(width - 8) + f"{xhi:.3g}"
    legend = "  ".join(f"{name[0]} = {name}" for name in series)
    parts = [body, axis, xaxis, " " * 10 + legend]
    if y_label:
        parts.insert(0, f"{y_label} vs {x_label}" if x_label else y_label)
    return "\n".join(parts)


def render_cdf(
    samples: Dict[str, np.ndarray], width: int = 60, height: int = 16
) -> str:
    """Plot empirical CDFs of one or more samples (Fig. 3a style)."""
    series = {}
    for name, values in samples.items():
        xs, ys = empirical_cdf(np.asarray(values, float))
        series[name] = (xs, ys)
    return render_series(series, width=width, height=height, y_label="CDF")
