"""Dependency-free text visualization.

The paper's figures are spatial: flux heat maps (Figs. 1, 4),
prediction scatters (Fig. 5), trajectories (Fig. 7), CDFs (Fig. 3a).
These helpers render all of them as terminal text so examples and CLI
commands can *show* the attack without a plotting stack.
"""

from repro.viz.heatmap import render_flux_heatmap
from repro.viz.scatter import render_positions
from repro.viz.curves import render_cdf, render_series

__all__ = [
    "render_flux_heatmap",
    "render_positions",
    "render_cdf",
    "render_series",
]
