"""ASCII position scatter plots (paper Figs. 5 and 7 as text)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field


def render_positions(
    field: Field,
    layers: Dict[str, np.ndarray],
    width: int = 60,
    height: int = 24,
) -> str:
    """Plot labelled point sets inside the field.

    Parameters
    ----------
    layers:
        ``{glyph: (k, 2) positions}`` — each layer is drawn with its
        single-character glyph; later layers overwrite earlier ones
        (put ground truth last so it stays visible).
    """
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must each be >= 2")
    for glyph in layers:
        if len(glyph) != 1:
            raise ConfigurationError(
                f"layer glyphs must be single characters, got {glyph!r}"
            )
    xmin, ymin, xmax, ymax = field.bounding_box
    grid = [[" "] * width for _ in range(height)]
    for glyph, points in layers.items():
        points = np.asarray(points, dtype=float)
        if points.size == 0:
            continue
        if points.ndim != 2 or points.shape[1] != 2:
            raise ConfigurationError(
                f"layer {glyph!r} must be (k, 2), got {points.shape}"
            )
        for x, y in points:
            col = int(np.clip((x - xmin) / (xmax - xmin) * width, 0, width - 1))
            row = int(np.clip((y - ymin) / (ymax - ymin) * height, 0, height - 1))
            grid[height - 1 - row][col] = glyph
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    legend = "  ".join(f"{glyph}={glyph}" for glyph in layers)
    return f"{border}\n{body}\n{border}"
