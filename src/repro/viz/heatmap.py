"""ASCII flux heat maps (the text analogue of paper Figs. 1 and 4)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network

#: Light-to-dark shading ramp.
_RAMP = " .:-=+*#%@"


def render_flux_heatmap(
    network: Network,
    flux: np.ndarray,
    width: int = 60,
    height: int = 24,
    markers: Optional[np.ndarray] = None,
    log_scale: bool = True,
) -> str:
    """Render a per-node flux vector as an ASCII heat map.

    Parameters
    ----------
    flux:
        ``(node_count,)`` values; each character cell shows the mean
        flux of the nodes falling in it, shaded light -> dark.
    markers:
        Optional ``(k, 2)`` positions drawn as ``X`` (e.g. true user
        locations).
    log_scale:
        Shade by ``log1p(flux)`` — the flux spans orders of magnitude
        between the sink and the boundary, so linear shading would
        show a single dark dot.
    """
    flux = np.asarray(flux, dtype=float)
    if flux.shape != (network.node_count,):
        raise ConfigurationError(
            f"flux must have shape ({network.node_count},), got {flux.shape}"
        )
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must each be >= 2")

    xmin, ymin, xmax, ymax = network.field.bounding_box
    xs = np.clip(
        ((network.positions[:, 0] - xmin) / (xmax - xmin) * width).astype(int),
        0,
        width - 1,
    )
    ys = np.clip(
        ((network.positions[:, 1] - ymin) / (ymax - ymin) * height).astype(int),
        0,
        height - 1,
    )
    sums = np.zeros((height, width))
    counts = np.zeros((height, width))
    np.add.at(sums, (ys, xs), flux)
    np.add.at(counts, (ys, xs), 1.0)
    with np.errstate(invalid="ignore"):
        cells = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    values = np.log1p(np.maximum(cells, 0.0)) if log_scale else cells
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = max(hi - lo, 1e-12)

    grid = []
    for row in range(height - 1, -1, -1):  # y grows upward
        line = []
        for col in range(width):
            v = values[row, col]
            if not np.isfinite(v):
                line.append(" ")
            else:
                idx = int((v - lo) / span * (len(_RAMP) - 1))
                line.append(_RAMP[idx])
        grid.append(line)

    if markers is not None:
        markers = np.asarray(markers, dtype=float)
        for mx, my in markers:
            col = int(np.clip((mx - xmin) / (xmax - xmin) * width, 0, width - 1))
            row = int(
                np.clip((my - ymin) / (ymax - ymin) * height, 0, height - 1)
            )
            grid[height - 1 - row][col] = "X"

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    return f"{border}\n{body}\n{border}"
