"""Planar geometry substrate.

Provides the field-boundary abstraction used by the flux model: for a
sink at ``p`` and a node at ``q`` inside the field, the model needs the
distance ``l`` from ``p`` to the field boundary along the ray
``p -> q`` (paper Formula 3.4). All boundary types implement vectorized
ray casting for this query.
"""

from repro.geometry.field import (
    CircularField,
    Field,
    PolygonField,
    RectangularField,
)
from repro.geometry.rays import boundary_distances, pairwise_boundary_distances
from repro.geometry.distance import pairwise_distances, distances_to_point
from repro.geometry.grid import SpatialHashGrid

__all__ = [
    "Field",
    "RectangularField",
    "CircularField",
    "PolygonField",
    "boundary_distances",
    "pairwise_boundary_distances",
    "pairwise_distances",
    "distances_to_point",
    "SpatialHashGrid",
]
