"""Uniform spatial hash grid for neighbor queries.

Building the unit-disk connectivity graph naively is O(n^2); the hash
grid brings it to ~O(n) for the node densities the paper uses (900 to
2500 nodes), and also backs neighborhood flux smoothing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.util.validation import check_positive


class SpatialHashGrid:
    """Bucket points into square cells of side ``cell_size``.

    Radius queries inspect only the 3x3 cell neighborhood when
    ``radius <= cell_size``, and the appropriately larger window
    otherwise.
    """

    def __init__(self, points: np.ndarray, cell_size: float):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise GeometryError(f"points must have shape (n, 2), got {points.shape}")
        self.points = points
        self.cell_size = check_positive("cell_size", cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        keys = np.floor(points / self.cell_size).astype(np.int64)
        for idx, (cx, cy) in enumerate(keys):
            self._cells.setdefault((int(cx), int(cy)), []).append(idx)

    def __len__(self) -> int:
        return self.points.shape[0]

    def _cell_of(self, point: np.ndarray) -> Tuple[int, int]:
        return (
            int(np.floor(point[0] / self.cell_size)),
            int(np.floor(point[1] / self.cell_size)),
        )

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of stored points within ``radius`` of ``center``."""
        radius = check_positive("radius", radius)
        center = np.asarray(center, dtype=float).reshape(2)
        # +1 covers the boundary case where the center sits exactly on
        # a cell edge and a neighbor lies exactly `radius` away.
        reach = int(np.ceil(radius / self.cell_size)) + 1
        ccx, ccy = self._cell_of(center)
        candidates: List[int] = []
        for cx in range(ccx - reach, ccx + reach + 1):
            for cy in range(ccy - reach, ccy + reach + 1):
                candidates.extend(self._cells.get((cx, cy), ()))
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        pts = self.points[cand]
        mask = np.hypot(pts[:, 0] - center[0], pts[:, 1] - center[1]) <= radius
        return cand[mask]

    def all_pairs_within(self, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All unordered index pairs ``(i, j)``, ``i < j``, within ``radius``.

        Returns two equal-length arrays (rows, cols). This is the edge
        list of the unit-disk graph.
        """
        radius = check_positive("radius", radius)
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        for i in range(self.points.shape[0]):
            neighbors = self.query_radius(self.points[i], radius)
            neighbors = neighbors[neighbors > i]
            if neighbors.size:
                rows.append(np.full(neighbors.size, i, dtype=np.int64))
                cols.append(neighbors)
        if not rows:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(rows), np.concatenate(cols)
