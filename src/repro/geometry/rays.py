"""Boundary-distance queries for the flux model.

Formula 3.4 of the paper needs, for every (sink, node) pair, the length
``l`` of the chord from the sink through the node to the field
boundary. These helpers vectorize that query over many nodes (and many
candidate sink positions), which is the inner loop of both NLS fitting
and SMC filtering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.field import Field

_EPS = 1e-12


def boundary_distances(
    field: Field,
    sink: np.ndarray,
    nodes: np.ndarray,
    degenerate_direction: np.ndarray = (1.0, 0.0),
) -> np.ndarray:
    """Distance from ``sink`` to the boundary along each sink->node ray.

    Parameters
    ----------
    field:
        The deployment field.
    sink:
        ``(2,)`` sink position (must be inside the field).
    nodes:
        ``(n, 2)`` node positions.
    degenerate_direction:
        Direction to use for nodes coincident with the sink (where the
        ray direction is undefined). Any fixed unit vector is fine —
        the flux model clamps the corresponding distance ``d`` anyway.

    Returns
    -------
    ``(n,)`` boundary distances ``l_i >= d_i`` for in-field nodes.
    """
    sink = np.asarray(sink, dtype=float).reshape(2)
    nodes = np.asarray(nodes, dtype=float)
    if nodes.ndim != 2 or nodes.shape[1] != 2:
        raise GeometryError(f"nodes must have shape (n, 2), got {nodes.shape}")
    directions = nodes - sink[None, :]
    norms = np.hypot(directions[:, 0], directions[:, 1])
    fallback = np.asarray(degenerate_direction, dtype=float).reshape(2)
    unit = np.where(
        norms[:, None] > _EPS, directions / np.maximum(norms, _EPS)[:, None], fallback
    )
    origins = np.broadcast_to(sink, nodes.shape).copy()
    return field.ray_exit_distance(origins, unit)


def pairwise_boundary_distances(
    field: Field, sinks: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Boundary distances for every (sink, node) pair.

    Returns an ``(m, n)`` array where entry ``(j, i)`` is the distance
    from sink ``j`` to the boundary along the ray towards node ``i``.
    Used to batch-evaluate the flux model for many candidate sink
    positions at once.
    """
    sinks = np.asarray(sinks, dtype=float)
    if sinks.ndim == 1:
        sinks = sinks[None, :]
    if sinks.ndim != 2 or sinks.shape[1] != 2:
        raise GeometryError(f"sinks must have shape (m, 2), got {sinks.shape}")
    out = np.empty((sinks.shape[0], np.asarray(nodes).shape[0]))
    for j in range(sinks.shape[0]):
        out[j] = boundary_distances(field, sinks[j], nodes)
    return out
