"""Field boundaries and the vectorized boundary ray-cast query.

The paper's flux model (Formula 3.4) depends on the shape of the
deployment field through ``l(x_i, y_i, x_j, y_j)``: the distance from a
sink to the field boundary along the sink->node direction. The paper
notes that a rectangular field makes the NLS objective
non-differentiable — which is exactly why it resorts to sampling-based
search. We implement rectangular (the paper's evaluation field),
circular (smooth; used by the scipy-refinement baseline), and general
convex-polygon boundaries.
"""

from __future__ import annotations

import abc
from typing import Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.util.validation import check_finite_array, check_positive

_EPS = 1e-12


class Field(abc.ABC):
    """A bounded planar region in which the sensor network is deployed."""

    @property
    @abc.abstractmethod
    def area(self) -> float:
        """Area of the field."""

    @property
    @abc.abstractmethod
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""

    @property
    def diameter(self) -> float:
        """Diameter of the bounding box (used for error normalization)."""
        xmin, ymin, xmax, ymax = self.bounding_box
        return float(np.hypot(xmax - xmin, ymax - ymin))

    @abc.abstractmethod
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``points`` (shape ``(n, 2)``) lie inside."""

    @abc.abstractmethod
    def ray_exit_distance(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        """Distance from each origin to the boundary along each unit direction.

        Parameters
        ----------
        origins:
            ``(n, 2)`` points inside (or on) the field.
        directions:
            ``(n, 2)`` unit direction vectors.

        Returns
        -------
        ``(n,)`` non-negative exit distances. Origins outside the field
        raise :class:`~repro.errors.GeometryError`.
        """

    @abc.abstractmethod
    def sample_uniform(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points uniformly from the field, shape ``(count, 2)``."""

    def clip(self, points: np.ndarray) -> np.ndarray:
        """Project ``points`` onto the field (nearest inside point).

        Default implementation clamps to the bounding box then leaves
        the caller to re-check containment; subclasses with exact
        projections override this.
        """
        xmin, ymin, xmax, ymax = self.bounding_box
        points = np.asarray(points, dtype=float)
        clipped = np.empty_like(points)
        clipped[..., 0] = np.clip(points[..., 0], xmin, xmax)
        clipped[..., 1] = np.clip(points[..., 1], ymin, ymax)
        return clipped


def _as_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points[None, :]
    if points.ndim != 2 or points.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {points.shape}")
    return points


class RectangularField(Field):
    """Axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    This is the field used in the paper's evaluation (a 30 x 30 square).
    """

    def __init__(self, width: float, height: float, origin: Tuple[float, float] = (0.0, 0.0)):
        self.width = check_positive("width", width)
        self.height = check_positive("height", height)
        self.xmin = float(origin[0])
        self.ymin = float(origin[1])
        self.xmax = self.xmin + self.width
        self.ymax = self.ymin + self.height

    def __repr__(self) -> str:
        return (
            f"RectangularField({self.width}x{self.height}, "
            f"origin=({self.xmin}, {self.ymin}))"
        )

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def bounding_box(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = _as_points(points)
        x, y = points[:, 0], points[:, 1]
        return (
            (x >= self.xmin - _EPS)
            & (x <= self.xmax + _EPS)
            & (y >= self.ymin - _EPS)
            & (y <= self.ymax + _EPS)
        )

    def ray_exit_distance(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        origins = _as_points(origins)
        directions = _as_points(directions)
        if origins.shape != directions.shape:
            raise GeometryError(
                f"origins {origins.shape} and directions {directions.shape} must match"
            )
        if not np.all(self.contains(origins)):
            raise GeometryError("ray origins must lie inside the field")

        # Slab method: for each wall, the parameter t at which the ray
        # crosses it; the exit distance is the smallest positive t.
        ox, oy = origins[:, 0], origins[:, 1]
        dx, dy = directions[:, 0], directions[:, 1]

        t_exit = np.full(origins.shape[0], np.inf)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for wall, o, d in (
                (self.xmin, ox, dx),
                (self.xmax, ox, dx),
                (self.ymin, oy, dy),
                (self.ymax, oy, dy),
            ):
                t = (wall - o) / d
                valid = np.isfinite(t) & (t > _EPS)
                t_exit = np.where(valid & (t < t_exit), t, t_exit)

        # A zero direction vector never exits; reject it explicitly.
        degenerate = np.hypot(dx, dy) < _EPS
        if np.any(degenerate):
            raise GeometryError("direction vectors must be non-zero")
        if np.any(~np.isfinite(t_exit)):
            raise GeometryError("ray never exits the field (numerical issue)")
        return t_exit

    def sample_uniform(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        xs = rng.uniform(self.xmin, self.xmax, size=count)
        ys = rng.uniform(self.ymin, self.ymax, size=count)
        return np.column_stack([xs, ys])


class CircularField(Field):
    """Disc of given radius centered at ``center``.

    The circular boundary makes ``l`` (and hence the NLS objective)
    smooth in the sink position, so gradient-based refinement applies;
    we use it for the scipy-refinement ablation.
    """

    def __init__(self, radius: float, center: Tuple[float, float] = (0.0, 0.0)):
        self.radius = check_positive("radius", radius)
        self.center = np.asarray(center, dtype=float)
        if self.center.shape != (2,):
            raise ConfigurationError(f"center must be length-2, got {center!r}")

    def __repr__(self) -> str:
        return f"CircularField(radius={self.radius}, center={tuple(self.center)})"

    @property
    def area(self) -> float:
        return float(np.pi * self.radius**2)

    @property
    def bounding_box(self) -> Tuple[float, float, float, float]:
        cx, cy = self.center
        return (cx - self.radius, cy - self.radius, cx + self.radius, cy + self.radius)

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = _as_points(points)
        return (
            np.hypot(points[:, 0] - self.center[0], points[:, 1] - self.center[1])
            <= self.radius + _EPS
        )

    def ray_exit_distance(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        origins = _as_points(origins)
        directions = _as_points(directions)
        if origins.shape != directions.shape:
            raise GeometryError(
                f"origins {origins.shape} and directions {directions.shape} must match"
            )
        if not np.all(self.contains(origins)):
            raise GeometryError("ray origins must lie inside the field")
        norms = np.hypot(directions[:, 0], directions[:, 1])
        if np.any(norms < _EPS):
            raise GeometryError("direction vectors must be non-zero")
        u = directions / norms[:, None]
        rel = origins - self.center[None, :]
        # Solve |rel + t*u| = radius for the positive root.
        b = np.einsum("ij,ij->i", rel, u)
        c = np.einsum("ij,ij->i", rel, rel) - self.radius**2
        disc = np.maximum(b * b - c, 0.0)
        t = -b + np.sqrt(disc)
        return np.maximum(t, 0.0)

    def sample_uniform(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        radii = self.radius * np.sqrt(rng.uniform(0.0, 1.0, size=count))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
        return self.center[None, :] + np.column_stack(
            [radii * np.cos(angles), radii * np.sin(angles)]
        )

    def clip(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        rel = points - self.center
        dist = np.hypot(rel[..., 0], rel[..., 1])
        scale = np.where(dist > self.radius, self.radius / np.maximum(dist, _EPS), 1.0)
        return self.center + rel * scale[..., None]


class PolygonField(Field):
    """Convex polygon field (vertices in counter-clockwise order).

    Generalizes the rectangle: irregular campus-shaped deployments in
    the trace-driven experiment can be modeled with an arbitrary convex
    boundary.
    """

    def __init__(self, vertices: Iterable[Tuple[float, float]]):
        verts = check_finite_array("vertices", np.asarray(list(vertices), dtype=float))
        if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
            raise ConfigurationError(
                f"vertices must have shape (k>=3, 2), got {verts.shape}"
            )
        area2 = _signed_area2(verts)
        if abs(area2) < _EPS:
            raise ConfigurationError("polygon is degenerate (zero area)")
        if area2 < 0:  # normalize to counter-clockwise
            verts = verts[::-1].copy()
        if not _is_convex_ccw(verts):
            raise ConfigurationError("PolygonField requires a convex polygon")
        self.vertices = verts

    def __repr__(self) -> str:
        return f"PolygonField({self.vertices.shape[0]} vertices)"

    @property
    def area(self) -> float:
        return float(_signed_area2(self.vertices) / 2.0)

    @property
    def bounding_box(self) -> Tuple[float, float, float, float]:
        xs, ys = self.vertices[:, 0], self.vertices[:, 1]
        return (float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))

    def _edges(self) -> Tuple[np.ndarray, np.ndarray]:
        a = self.vertices
        b = np.roll(self.vertices, -1, axis=0)
        return a, b

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = _as_points(points)
        a, b = self._edges()
        edge = b - a  # (k, 2)
        rel = points[:, None, :] - a[None, :, :]  # (n, k, 2)
        cross = edge[None, :, 0] * rel[:, :, 1] - edge[None, :, 1] * rel[:, :, 0]
        return np.all(cross >= -1e-9, axis=1)

    def ray_exit_distance(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        origins = _as_points(origins)
        directions = _as_points(directions)
        if origins.shape != directions.shape:
            raise GeometryError(
                f"origins {origins.shape} and directions {directions.shape} must match"
            )
        if not np.all(self.contains(origins)):
            raise GeometryError("ray origins must lie inside the field")
        norms = np.hypot(directions[:, 0], directions[:, 1])
        if np.any(norms < _EPS):
            raise GeometryError("direction vectors must be non-zero")
        u = directions / norms[:, None]

        a, b = self._edges()
        edge = b - a
        # Ray p + t*u crosses edge a + s*edge where both parameters are
        # admissible; for a convex polygon the exit is the smallest
        # positive t over all edges.
        n_pts = origins.shape[0]
        t_exit = np.full(n_pts, np.inf)
        for i in range(a.shape[0]):
            e = edge[i]
            denom = u[:, 0] * e[1] - u[:, 1] * e[0]
            rel = a[i][None, :] - origins
            with np.errstate(divide="ignore", invalid="ignore"):
                t = (rel[:, 0] * e[1] - rel[:, 1] * e[0]) / denom
                s = (u[:, 1] * rel[:, 0] - u[:, 0] * rel[:, 1]) / denom
            valid = (
                np.isfinite(t)
                & np.isfinite(s)
                & (t > _EPS)
                & (s >= -1e-9)
                & (s <= 1.0 + 1e-9)
            )
            t_exit = np.where(valid & (t < t_exit), t, t_exit)
        if np.any(~np.isfinite(t_exit)):
            raise GeometryError("ray never exits the polygon (numerical issue)")
        return t_exit

    def sample_uniform(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        # Rejection sampling from the bounding box; convexity keeps the
        # acceptance rate >= polygon_area / bbox_area which is bounded
        # away from zero for non-degenerate polygons.
        xmin, ymin, xmax, ymax = self.bounding_box
        out = np.empty((count, 2))
        filled = 0
        while filled < count:
            need = count - filled
            cand = np.column_stack(
                [
                    rng.uniform(xmin, xmax, size=2 * need + 8),
                    rng.uniform(ymin, ymax, size=2 * need + 8),
                ]
            )
            ok = cand[self.contains(cand)]
            take = min(need, ok.shape[0])
            out[filled : filled + take] = ok[:take]
            filled += take
        return out


def _signed_area2(verts: np.ndarray) -> float:
    x, y = verts[:, 0], verts[:, 1]
    return float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def _is_convex_ccw(verts: np.ndarray) -> bool:
    a = verts
    b = np.roll(verts, -1, axis=0)
    c = np.roll(verts, -2, axis=0)
    cross = (b[:, 0] - a[:, 0]) * (c[:, 1] - b[:, 1]) - (b[:, 1] - a[:, 1]) * (
        c[:, 0] - b[:, 0]
    )
    return bool(np.all(cross >= -1e-9))
