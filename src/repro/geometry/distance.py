"""Vectorized Euclidean distance helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def _check_points(name: str, points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise GeometryError(f"{name} must have shape (n, 2), got {points.shape}")
    return points


def distances_to_point(points: np.ndarray, origin: np.ndarray) -> np.ndarray:
    """Euclidean distance from each of ``points`` (n, 2) to ``origin`` (2,)."""
    points = _check_points("points", points)
    origin = np.asarray(origin, dtype=float).reshape(2)
    return np.hypot(points[:, 0] - origin[0], points[:, 1] - origin[1])


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs distance matrix of shape ``(len(a), len(b))``."""
    a = _check_points("a", a)
    b = _check_points("b", b)
    diff = a[:, None, :] - b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])
