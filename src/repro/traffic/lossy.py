"""Lossy-link flux simulation.

Real 802.15.4 links drop packets; a relayed unit survives each hop
with probability ``delivery``. Expected flux then attenuates
geometrically with subtree depth, which biases the flux fingerprint —
the robustness bench measures the attack against it. The expectation
is computed exactly (no per-packet sampling needed): a node's expected
relayed traffic is

    F(v) = own(v) + delivery * sum_children F(c)

since each unit arriving at a child must survive one more hop to be
counted at ``v``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.routing.tree import CollectionTree
from repro.util.validation import check_in_range


def lossy_subtree_flux(
    tree: CollectionTree,
    weights: np.ndarray,
    delivery: float,
) -> np.ndarray:
    """Expected per-node flux with per-hop delivery probability.

    ``delivery = 1`` reproduces the lossless subtree aggregate.
    """
    check_in_range("delivery", delivery, 0.0, 1.0, inclusive=(False, True))
    weights = np.asarray(weights, dtype=float)
    n = tree.node_count
    if weights.shape != (n,):
        raise ConfigurationError(f"weights must have shape ({n},)")
    flux = np.where(tree.reachable, weights, 0.0).astype(float)
    order = np.argsort(tree.hops)[::-1]
    p = float(delivery)
    for node in order:
        if tree.hops[node] <= 0:
            continue
        flux[tree.parents[node]] += p * flux[node]
    return flux
