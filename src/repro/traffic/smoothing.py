"""Neighborhood flux smoothing.

The paper (§III.B): "if we average the amount of flux within the
neighborhood of an intermediate node, we are able to get a smoother
map of the network flux and better approximation accuracy by
mitigating the randomness of routing tree construction."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.util.validation import check_positive


def smooth_flux(
    network: Network,
    flux: np.ndarray,
    radius: float = None,
    include_self: bool = True,
) -> np.ndarray:
    """Average each node's flux over its radio neighborhood.

    Parameters
    ----------
    radius:
        Averaging radius; defaults to the network's radio radius so the
        neighborhood is exactly the 1-hop communication neighborhood.
    include_self:
        Whether the node's own flux participates in its average.
    """
    flux = np.asarray(flux, dtype=float)
    if flux.shape != (network.node_count,):
        raise ConfigurationError(
            f"flux must have shape ({network.node_count},), got {flux.shape}"
        )
    if radius is None:
        radius = network.radius
    else:
        check_positive("radius", radius)

    graph = network.graph
    if abs(radius - network.radius) < 1e-12:
        # Fast path: the CSR adjacency is exactly the neighborhood.
        sums = np.zeros_like(flux)
        counts = np.zeros(network.node_count)
        src = np.repeat(np.arange(network.node_count), np.diff(graph.indptr))
        np.add.at(sums, src, flux[graph.indices])
        np.add.at(counts, src, 1.0)
        if include_self:
            sums += flux
            counts += 1.0
        counts = np.maximum(counts, 1.0)
        return sums / counts

    from repro.geometry.grid import SpatialHashGrid

    grid = SpatialHashGrid(network.positions, cell_size=radius)
    out = np.empty_like(flux)
    for i in range(network.node_count):
        idx = grid.query_radius(network.positions[i], radius)
        if not include_self:
            idx = idx[idx != i]
        out[i] = flux[idx].mean() if idx.size else flux[i]
    return out
