"""Collection events and schedules.

Each mobile user ``i`` collects data at its own time series
``[t_1, t_2, ...]`` from positions ``[p_1, p_2, ...]`` (paper §III.A).
A :class:`CollectionEvent` is one (user, time, position, stretch)
tuple; a :class:`CollectionSchedule` is the multiset of events, sliced
into measurement windows of width ``delta_t`` by the flux simulator.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CollectionEvent:
    """One data collection initiated by one mobile user."""

    user: int
    time: float
    position: Tuple[float, float]
    stretch: float

    def __post_init__(self) -> None:
        if self.user < 0:
            raise ConfigurationError(f"user id must be >= 0, got {self.user}")
        if not np.isfinite(self.time):
            raise ConfigurationError(f"event time must be finite, got {self.time}")
        if not (np.isfinite(self.stretch) and self.stretch >= 0):
            raise ConfigurationError(
                f"stretch must be finite and >= 0, got {self.stretch}"
            )


class CollectionSchedule:
    """Time-ordered multiset of collection events across all users."""

    def __init__(self, events: Iterable[CollectionEvent]):
        self.events: List[CollectionEvent] = sorted(events, key=lambda e: e.time)
        self._times = [e.time for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def users(self) -> List[int]:
        """Sorted distinct user ids appearing in the schedule."""
        return sorted({e.user for e in self.events})

    @property
    def time_span(self) -> Tuple[float, float]:
        if not self.events:
            raise ConfigurationError("schedule is empty")
        return self._times[0], self._times[-1]

    def events_in_window(self, start: float, end: float) -> List[CollectionEvent]:
        """Events with ``start <= time < end`` (right-open windows)."""
        if end < start:
            raise ConfigurationError(f"window end {end} precedes start {start}")
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self.events[lo:hi]

    def windows(self, delta_t: float, start: Optional[float] = None,
                end: Optional[float] = None) -> List[Tuple[float, List[CollectionEvent]]]:
        """Slice the schedule into consecutive ``delta_t`` windows.

        Returns ``[(window_start, events), ...]`` covering
        ``[start, end)``; empty windows are included because the
        tracker must still advance time for asynchronous updating.
        """
        check_positive("delta_t", delta_t)
        t0, t1 = self.time_span
        start = t0 if start is None else float(start)
        end = t1 + delta_t if end is None else float(end)
        if end <= start:
            raise ConfigurationError("window range is empty")
        out: List[Tuple[float, List[CollectionEvent]]] = []
        t = start
        while t < end:
            out.append((t, self.events_in_window(t, t + delta_t)))
            t += delta_t
        return out

    def user_events(self, user: int) -> List[CollectionEvent]:
        return [e for e in self.events if e.user == user]


def synchronous_schedule(
    trajectories: Sequence[np.ndarray],
    stretches: Sequence[float],
    delta_t: float = 1.0,
    start: float = 0.0,
) -> CollectionSchedule:
    """All users collect simultaneously once per round (paper §V.B).

    Parameters
    ----------
    trajectories:
        Per-user ``(rounds, 2)`` position arrays; all must have equal
        length — round ``k`` happens at time ``start + k * delta_t``.
    stretches:
        Per-user constant traffic stretch.
    """
    check_positive("delta_t", delta_t)
    if len(trajectories) != len(stretches):
        raise ConfigurationError(
            f"{len(trajectories)} trajectories but {len(stretches)} stretches"
        )
    if not trajectories:
        raise ConfigurationError("need at least one user")
    rounds = {np.asarray(tr).shape[0] for tr in trajectories}
    if len(rounds) != 1:
        raise ConfigurationError(
            f"all trajectories must have the same number of rounds, got {rounds}"
        )
    events = []
    for user, (traj, s) in enumerate(zip(trajectories, stretches)):
        traj = np.asarray(traj, dtype=float)
        for k in range(traj.shape[0]):
            events.append(
                CollectionEvent(
                    user=user,
                    time=start + k * delta_t,
                    position=(float(traj[k, 0]), float(traj[k, 1])),
                    stretch=float(s),
                )
            )
    return CollectionSchedule(events)


def poisson_schedule(
    trajectories: Sequence[np.ndarray],
    trajectory_times: Sequence[np.ndarray],
    stretches: Sequence[float],
    rate: float,
    horizon: float,
    rng: RandomState = None,
) -> CollectionSchedule:
    """Users collect at independent Poisson times (asynchronous setting).

    Positions at event times are linearly interpolated from each user's
    timestamped trajectory. Models the paper's observation that real
    users collect "at their own will", so at any window only a few are
    active (§V.C discussion).
    """
    check_positive("rate", rate)
    check_positive("horizon", horizon)
    if not (len(trajectories) == len(trajectory_times) == len(stretches)):
        raise ConfigurationError("trajectories, times and stretches must align")
    gen = as_generator(rng)
    events = []
    for user, (traj, times, s) in enumerate(
        zip(trajectories, trajectory_times, stretches)
    ):
        traj = np.asarray(traj, dtype=float)
        times = np.asarray(times, dtype=float)
        if traj.shape[0] != times.shape[0]:
            raise ConfigurationError(
                f"user {user}: trajectory and times lengths differ"
            )
        t = 0.0
        while True:
            t += float(gen.exponential(1.0 / rate))
            if t >= horizon:
                break
            x = float(np.interp(t, times, traj[:, 0]))
            y = float(np.interp(t, times, traj[:, 1]))
            events.append(
                CollectionEvent(user=user, time=t, position=(x, y), stretch=float(s))
            )
    if not events:
        raise ConfigurationError(
            "Poisson schedule produced no events; increase rate or horizon"
        )
    return CollectionSchedule(events)
