"""In-network aggregation traffic (TAG-style [14]) — attack robustness.

The flux model assumes *raw* convergecast: every relayed unit stays a
unit, so flux equals subtree mass. TAG-style aggregation compresses
data in the network — a node forwards ``own + compress(children)``
rather than the full subtree. This flattens the flux fingerprint and
is therefore both a realism knob and an implicit defense; the
robustness bench measures how much aggregation degrades the attack.

``aggregation_factor = 1`` reproduces raw convergecast; ``0`` is full
aggregation (every node forwards exactly one unit regardless of
subtree size). Intermediate values interpolate: a node's flux is

    F(v) = own(v) + factor * sum_children F(c) + (1 - factor) * |children| * unit
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.routing.tree import CollectionTree
from repro.util.validation import check_probability


def aggregated_subtree_flux(
    tree: CollectionTree,
    weights: np.ndarray,
    aggregation_factor: float,
) -> np.ndarray:
    """Per-node flux under partial in-network aggregation.

    Parameters
    ----------
    weights:
        ``(n,)`` per-node generated data (the stretch).
    aggregation_factor:
        1.0 = raw convergecast (flux == subtree aggregate);
        0.0 = each child's entire subtree compresses to that child's
        own weight before being relayed.
    """
    check_probability("aggregation_factor", aggregation_factor)
    weights = np.asarray(weights, dtype=float)
    n = tree.node_count
    if weights.shape != (n,):
        raise ConfigurationError(f"weights must have shape ({n},)")

    flux = np.where(tree.reachable, weights, 0.0).astype(float)
    order = np.argsort(tree.hops)[::-1]  # deepest first
    f = float(aggregation_factor)
    for node in order:
        if tree.hops[node] <= 0:
            continue
        parent = tree.parents[node]
        # The parent relays an interpolation between the child's full
        # flux (raw) and just the child's own generation (aggregated).
        flux[parent] += f * flux[node] + (1.0 - f) * weights[node]
    return flux
