"""Traffic substrate: who collects when, and what flux it induces.

``F = sum_i F_i`` — the observable per-node flux is the superposition
of the convergecast traffic of every active mobile user in the current
measurement window (paper Section III.A).
"""

from repro.traffic.events import (
    CollectionEvent,
    CollectionSchedule,
    poisson_schedule,
    synchronous_schedule,
)
from repro.traffic.stretch import (
    StretchModel,
    UniformStretch,
    RandomStretch,
    PerNodeInterestStretch,
)
from repro.traffic.flux import FluxSimulator, simulate_flux
from repro.traffic.smoothing import smooth_flux
from repro.traffic.aggregation import aggregated_subtree_flux
from repro.traffic.lossy import lossy_subtree_flux
from repro.traffic.measurement import (
    DropoutNoise,
    GaussianNoise,
    FluxObservation,
    MeasurementModel,
    NoiseModel,
    NoNoise,
)

__all__ = [
    "CollectionEvent",
    "CollectionSchedule",
    "synchronous_schedule",
    "poisson_schedule",
    "StretchModel",
    "UniformStretch",
    "RandomStretch",
    "PerNodeInterestStretch",
    "FluxSimulator",
    "simulate_flux",
    "smooth_flux",
    "aggregated_subtree_flux",
    "lossy_subtree_flux",
    "MeasurementModel",
    "FluxObservation",
    "NoiseModel",
    "NoNoise",
    "GaussianNoise",
    "DropoutNoise",
]
