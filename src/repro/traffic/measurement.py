"""Flux measurement at sniffer nodes.

The adversary passively counts transmissions at a sparse set of
sensors during each time window ``delta_t``. The paper treats these
counts as exact; we additionally model measurement noise (Gaussian
miscounting, sniffer dropout) as a robustness extension.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.traffic.smoothing import smooth_flux
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class FluxObservation:
    """One window's flux readings at the sniffer nodes.

    Attributes
    ----------
    time:
        Window start time.
    sniffers:
        ``(n,)`` indices of the reporting nodes.
    values:
        ``(n,)`` measured flux at those nodes — *after* smoothing and
        noise; this is what the attack consumes.
    raw_values:
        Optional ``(n,)`` pre-noise readings, kept when the measurement
        pipeline smooths or perturbs ``values`` so archives can be
        re-analyzed against the clean signal. ``None`` in the paper's
        exact-count setting.
    """

    time: float
    sniffers: np.ndarray
    values: np.ndarray
    raw_values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.sniffers.shape != self.values.shape:
            raise ConfigurationError(
                f"sniffers {self.sniffers.shape} and values {self.values.shape} differ"
            )
        if self.raw_values is not None and (
            self.raw_values.shape != self.values.shape
        ):
            raise ConfigurationError(
                f"raw_values {self.raw_values.shape} and values "
                f"{self.values.shape} differ"
            )

    @property
    def count(self) -> int:
        return int(self.sniffers.size)


class NoiseModel(abc.ABC):
    """Perturbs true flux readings into observed readings."""

    @abc.abstractmethod
    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the noisy version of ``values`` (must not mutate input)."""


class NoNoise(NoiseModel):
    """Exact counts — the paper's assumption."""

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return values.copy()


class GaussianNoise(NoiseModel):
    """Multiplicative Gaussian miscount: ``v * (1 + N(0, sigma))``, floored at 0."""

    def __init__(self, sigma: float):
        self.sigma = check_positive("sigma", sigma)

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = values * (1.0 + rng.normal(0.0, self.sigma, size=values.shape))
        return np.maximum(noisy, 0.0)


class DropoutNoise(NoiseModel):
    """Each sniffer independently fails to report with probability ``p``.

    A failed reading is returned as NaN; consumers must mask NaNs out
    of the NLS objective.
    """

    def __init__(self, p: float):
        self.p = check_probability("p", p)

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = values.copy()
        out[rng.uniform(size=values.shape) < self.p] = np.nan
        return out


class MeasurementModel:
    """Produces :class:`FluxObservation` from a ground-truth flux vector."""

    def __init__(
        self,
        network: Network,
        sniffers: np.ndarray,
        noise: Optional[NoiseModel] = None,
        smooth: bool = False,
        rng: RandomState = None,
    ):
        sniffers = np.asarray(sniffers, dtype=np.int64)
        if sniffers.ndim != 1 or sniffers.size == 0:
            raise ConfigurationError("sniffers must be a non-empty 1-D index array")
        if sniffers.min() < 0 or sniffers.max() >= network.node_count:
            raise ConfigurationError("sniffer index out of range")
        if np.unique(sniffers).size != sniffers.size:
            raise ConfigurationError("sniffer indices must be distinct")
        self.network = network
        self.sniffers = sniffers
        self.noise = noise if noise is not None else NoNoise()
        self.smooth = bool(smooth)
        self._rng = as_generator(rng)

    def observe(self, flux: np.ndarray, time: float = 0.0) -> FluxObservation:
        """Measure ``flux`` (full ``(node_count,)`` vector) at the sniffers."""
        flux = np.asarray(flux, dtype=float)
        if flux.shape != (self.network.node_count,):
            raise ConfigurationError(
                f"flux must have shape ({self.network.node_count},), got {flux.shape}"
            )
        raw = flux[self.sniffers].copy()
        if self.smooth:
            flux = smooth_flux(self.network, flux)
        readings = self.noise.apply(flux[self.sniffers], self._rng)
        altered = self.smooth or not isinstance(self.noise, NoNoise)
        return FluxObservation(
            time=float(time),
            sniffers=self.sniffers.copy(),
            values=readings,
            raw_values=raw if altered else None,
        )
