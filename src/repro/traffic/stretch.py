"""Traffic-stretch models.

The *traffic stretch* ``s`` is the proportion of data a user collects
from each node (paper §III.A) — users interested in different
environmental aspects pull different amounts. The paper's evaluation
draws each user's stretch uniformly from [1, 3].
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


class StretchModel(abc.ABC):
    """Assigns a traffic stretch to each (user, node) pair."""

    @abc.abstractmethod
    def user_stretch(self, user: int) -> float:
        """The user's scalar stretch (data units per covered node)."""

    def node_weights(self, user: int, node_count: int) -> np.ndarray:
        """Per-node data generation for ``user`` (default: constant stretch)."""
        return np.full(node_count, self.user_stretch(user), dtype=float)


class UniformStretch(StretchModel):
    """Every user collects the same constant stretch."""

    def __init__(self, stretch: float = 1.0):
        self.stretch = check_positive("stretch", stretch)

    def user_stretch(self, user: int) -> float:
        return self.stretch


class RandomStretch(StretchModel):
    """Each user's stretch drawn once from U[low, high] (paper: [1, 3])."""

    def __init__(self, low: float = 1.0, high: float = 3.0, rng: RandomState = None):
        self.low = check_positive("low", low)
        self.high = check_positive("high", high)
        if high < low:
            raise ConfigurationError(f"high {high} < low {low}")
        self._rng = as_generator(rng)
        self._assigned: dict = {}

    def user_stretch(self, user: int) -> float:
        if user not in self._assigned:
            self._assigned[user] = float(self._rng.uniform(self.low, self.high))
        return self._assigned[user]


class PerNodeInterestStretch(StretchModel):
    """Extension: users weight nodes by spatial interest.

    A user's pull from each node decays with distance from an interest
    center — modeling users who query mostly their surroundings. The
    scalar stretch is the mean per-node weight, so the flux model's
    constant-``s`` assumption becomes an approximation and the fitting
    error this induces can be measured (robustness ablation).
    """

    def __init__(
        self,
        base_stretch: float,
        interest_center: np.ndarray,
        decay_scale: float,
        positions: np.ndarray,
        floor: float = 0.1,
    ):
        self.base_stretch = check_positive("base_stretch", base_stretch)
        self.decay_scale = check_positive("decay_scale", decay_scale)
        if not 0 <= floor <= 1:
            raise ConfigurationError(f"floor must be in [0,1], got {floor}")
        self.floor = float(floor)
        self.interest_center = np.asarray(interest_center, dtype=float).reshape(2)
        self.positions = np.asarray(positions, dtype=float)
        d = np.hypot(
            self.positions[:, 0] - self.interest_center[0],
            self.positions[:, 1] - self.interest_center[1],
        )
        profile = self.floor + (1 - self.floor) * np.exp(-d / self.decay_scale)
        self._weights = self.base_stretch * profile

    def user_stretch(self, user: int) -> float:
        return float(self._weights.mean())

    def node_weights(self, user: int, node_count: int) -> np.ndarray:
        if node_count != self._weights.shape[0]:
            raise ConfigurationError(
                f"node_count {node_count} does not match positions "
                f"({self._weights.shape[0]})"
            )
        return self._weights.copy()
