"""Ground-truth flux simulation.

For each collection event a BFS tree is built from the user's attach
node and every covered sensor contributes ``stretch`` data units; a
node's flux for that event is the subtree total (generate + relay).
Fluxes of concurrent events superpose: ``F = sum_i F_i`` (§III.A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.routing.spt import build_collection_tree
from repro.traffic.events import CollectionEvent
from repro.util.rng import RandomState, as_generator


@dataclass
class FluxBreakdown:
    """Total flux plus the per-user shares (ground truth only).

    The adversary can never observe ``per_user`` — it exists so tests
    can verify superposition and briefing can be validated.
    """

    total: np.ndarray
    per_user: dict  # user id -> (n,) flux array


class FluxSimulator:
    """Simulates per-node flux for sets of concurrent collection events."""

    def __init__(self, network: Network, rng: RandomState = None):
        self.network = network
        self._rng = as_generator(rng)

    def event_flux(self, event: CollectionEvent) -> np.ndarray:
        """Per-node flux induced by a single collection event."""
        tree = build_collection_tree(
            self.network, np.asarray(event.position), rng=self._rng
        )
        weights = np.full(self.network.node_count, event.stretch, dtype=float)
        return tree.subtree_aggregate(weights)

    def window_flux(self, events: Iterable[CollectionEvent]) -> FluxBreakdown:
        """Superposed flux of all events in one measurement window."""
        total = np.zeros(self.network.node_count)
        per_user: dict = {}
        for event in events:
            flux = self.event_flux(event)
            total += flux
            if event.user in per_user:
                per_user[event.user] = per_user[event.user] + flux
            else:
                per_user[event.user] = flux
        return FluxBreakdown(total=total, per_user=per_user)


def simulate_flux(
    network: Network,
    sink_positions: Sequence[np.ndarray],
    stretches: Sequence[float],
    rng: RandomState = None,
) -> np.ndarray:
    """Convenience: total flux for users at ``sink_positions`` now.

    Equivalent to one synchronous measurement window in which every
    user collects once.
    """
    if len(sink_positions) != len(stretches):
        raise ConfigurationError(
            f"{len(sink_positions)} positions but {len(stretches)} stretches"
        )
    sim = FluxSimulator(network, rng=rng)
    events = [
        CollectionEvent(
            user=i,
            time=0.0,
            position=(float(p[0]), float(p[1])),
            stretch=float(s),
        )
        for i, (p, s) in enumerate(zip(sink_positions, stretches))
    ]
    return sim.window_flux(events).total
