#!/usr/bin/env python
"""Quickstart: locate a mobile user by passively sniffing 10% of a WSN.

Reproduces the paper's core claim end to end:

1. deploy a 900-node sensor network on a 30x30 field (paper defaults);
2. let a mobile user collect data over a network-wide collection tree;
3. sniff the per-node traffic *amount* at a random 10% of the sensors
   (no packet contents!);
4. fit the flux model by NLS and recover the user's position.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MeasurementModel,
    NLSLocalizer,
    build_network,
    sample_sniffers_percentage,
    simulate_flux,
)


def main() -> None:
    rng = np.random.default_rng(2010)

    print("Deploying 900 sensors (perturbed grid, 30x30 field, radius 2.4)...")
    network = build_network(rng=rng)
    print(
        f"  nodes={network.node_count}  avg degree={network.average_degree():.1f}"
        f"  avg hop distance={network.average_hop_distance():.2f}"
    )

    true_position = network.field.sample_uniform(1, rng)
    stretch = float(rng.uniform(1.0, 3.0))
    print(
        f"\nMobile user collects data at ({true_position[0, 0]:.2f}, "
        f"{true_position[0, 1]:.2f}) with traffic stretch {stretch:.2f}"
    )
    flux = simulate_flux(network, list(true_position), [stretch], rng=rng)

    sniffers = sample_sniffers_percentage(network, 10.0, rng=rng)
    print(f"\nAdversary sniffs flux at {sniffers.size} nodes (10%)...")
    observation = MeasurementModel(network, sniffers, smooth=True, rng=rng).observe(
        flux
    )

    localizer = NLSLocalizer(network.field, network.positions[sniffers])
    result = localizer.localize(
        observation, user_count=1, candidate_count=5000, rng=rng
    )
    estimate = result.position_estimates()[0]
    error = float(result.errors_to(true_position)[0])

    print(f"Estimated position: ({estimate[0]:.2f}, {estimate[1]:.2f})")
    print(
        f"Localization error: {error:.2f} "
        f"({error / network.field.diameter:.1%} of the field diameter)"
    )
    print(f"Fitted stretch factor s/r: {result.best.thetas[0]:.2f}")
    print(
        "\nNo packets were opened: the position leaked purely through "
        "per-node traffic volume."
    )


if __name__ == "__main__":
    main()
