#!/usr/bin/env python
"""A visual tour of the flux fingerprint (paper Figs. 1-4 in ASCII).

Walks through the physics of the attack: what a collection tree's
flux looks like, how two users' fluxes superpose, how well Formula 3.4
approximates reality, and how recursive briefing peels users off the
map one at a time.

Run:  python examples/flux_model_tour.py
"""

import numpy as np

from repro import build_network, model_flux, simulate_flux, smooth_flux
from repro.fingerprint import brief_flux_map
from repro.fluxmodel import estimate_hop_distance, model_accuracy_report
from repro.viz import render_cdf, render_flux_heatmap


def main() -> None:
    rng = np.random.default_rng(11)
    net = build_network(rng=rng)

    print("=" * 64)
    print("1. One user's collection-tree flux (X marks the user)")
    print("=" * 64)
    user_a = np.array([8.0, 21.0])
    flux_a = simulate_flux(net, [user_a], [2.0], rng=rng)
    print(render_flux_heatmap(net, flux_a, markers=user_a[None, :], width=56, height=18))

    print()
    print("=" * 64)
    print("2. Two users superpose: F = F_1 + F_2 (paper Fig. 1)")
    print("=" * 64)
    user_b = np.array([22.0, 7.0])
    flux_b = simulate_flux(net, [user_b], [2.0], rng=rng)
    both = flux_a + flux_b
    print(
        render_flux_heatmap(
            net, both, markers=np.stack([user_a, user_b]), width=56, height=18
        )
    )

    print()
    print("=" * 64)
    print("3. The theoretical model (Formula 3.4) vs the real flux")
    print("=" * 64)
    r_hat = estimate_hop_distance(net)
    modeled = model_flux(net, user_a, stretch=2.0, hop_distance=r_hat)
    print("model prediction for user 1:")
    print(render_flux_heatmap(net, modeled, markers=user_a[None, :], width=56, height=18))
    report = model_accuracy_report(net, sink_count=3, rng=rng)
    print(f"\nmodel accuracy: {report.row()}")
    print("\nCDF of the approximation error rate (paper Fig. 3a):")
    print(render_cdf({"error rate": report.error_rates}, width=50, height=10))

    print()
    print("=" * 64)
    print("4. Recursive briefing peels users off the map (paper Fig. 4)")
    print("=" * 64)
    briefing = brief_flux_map(net, both, max_users=2)
    for i, (user, residual) in enumerate(
        zip(briefing.users, briefing.residual_maps)
    ):
        print(
            f"\nafter round {i + 1}: detected user at "
            f"({user.position[0]:.1f}, {user.position[1]:.1f}), "
            f"theta {user.theta:.2f}; residual map:"
        )
        print(
            render_flux_heatmap(
                net,
                residual,
                markers=np.stack([user_a, user_b]),
                width=56,
                height=14,
            )
        )


if __name__ == "__main__":
    main()
