#!/usr/bin/env python
"""Track two moving users — including a trajectory crossing (Fig. 7).

Two mobile users walk across the field while collecting data each
round; the Sequential Monte Carlo tracker follows them from flux
observations at 10% of the nodes. The crossing scenario demonstrates
the identity-mixing phenomenon of Fig. 7(d): locations stay accurate,
labels may swap.

Run:  python examples/tracking_attack.py
"""

import numpy as np

from repro import (
    MeasurementModel,
    SequentialMonteCarloTracker,
    TrackerConfig,
    build_network,
    sample_sniffers_percentage,
    synchronous_schedule,
)
from repro.mobility import crossing_trajectories
from repro.smc.association import assignment_errors, identity_consistency
from repro.traffic import FluxSimulator


def main() -> None:
    rng = np.random.default_rng(42)
    network = build_network(rng=rng)
    rounds = 12

    traj_a, traj_b = crossing_trajectories(network.field, rounds)
    print("Two users on crossing diagonals, meeting mid-field.\n")

    stretches = [2.0, 1.5]
    schedule = synchronous_schedule(
        [traj_a.positions, traj_b.positions], stretches
    )
    simulator = FluxSimulator(network, rng=rng)
    sniffers = sample_sniffers_percentage(network, 10.0, rng=rng)
    measure = MeasurementModel(network, sniffers, smooth=True, rng=rng)
    tracker = SequentialMonteCarloTracker(
        network.field,
        network.positions[sniffers],
        user_count=2,
        config=TrackerConfig(prediction_count=1000, keep_count=10, max_speed=5.0),
        rng=rng,
    )

    print(f"{'round':>5} {'user A err':>10} {'user B err':>10}  labels")
    permutations = []
    for round_idx, (t, events) in enumerate(schedule.windows(1.0)):
        flux = simulator.window_flux(events).total
        step = tracker.step(measure.observe(flux, time=t))
        truth = np.stack(
            [traj_a.positions[round_idx], traj_b.positions[round_idx]]
        )
        errors, perm = assignment_errors(step.estimates, truth)
        permutations.append(perm)
        labels = "A<->A B<->B" if perm[0] == 0 else "A<->B SWAPPED"
        print(
            f"{round_idx:>5} {errors[0]:>10.2f} {errors[1]:>10.2f}  {labels}"
        )

    consistency = identity_consistency(permutations)
    print(f"\nIdentity consistency across rounds: {consistency:.0%}")
    print(
        "Locations remain accurate through the crossing even when the "
        "identities mix — exactly the paper's Fig. 7(d) observation."
    )


if __name__ == "__main__":
    main()
