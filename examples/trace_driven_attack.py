#!/usr/bin/env python
"""Trace-driven tracking of asynchronous campus users (Fig. 10).

Generates a synthetic Dartmouth-style syslog data set (the real trace
is not redistributable; see repro.traces), intercepts and compresses
each selected card's record 100x, maps it onto the 30x30 sensor
field, and tracks the users while they collect data asynchronously at
their own association instants.

Run:  python examples/trace_driven_attack.py
"""

import numpy as np

from repro import build_network, build_synthetic_dataset
from repro.experiments.config import PaperDefaults
from repro.experiments.trace_driven import _run_trace_tracking


def main() -> None:
    rng = np.random.default_rng(13)
    defaults = PaperDefaults().scaled(2)

    print("Generating synthetic campus traces (substituting Dartmouth v1.3)...")
    dataset = build_synthetic_dataset(user_count=30, rng=rng)
    print(
        f"  {len(dataset.associations)} cards, {len(dataset.aps)} landmark "
        f"APs in a {dataset.region[2] - dataset.region[0]:.0f} x "
        f"{dataset.region[3] - dataset.region[1]:.0f} campus region"
    )

    for deployment in ("perturbed_grid", "uniform_random"):
        network = build_network(
            node_count=defaults.node_count,
            radius=defaults.radius,
            deployment=deployment,
            rng=rng,
        )
        error = _run_trace_tracking(
            network,
            dataset,
            user_count=6,
            sniffer_percentage=10.0,
            resampling_radius=8.0,
            defaults=defaults,
            gen=np.random.default_rng(99),
        )
        print(
            f"\n{deployment}: mean tracking error {error:.2f} "
            f"({error / network.field.diameter:.1%} of field diameter)"
        )
    print(
        "\nAsynchronous collections keep per-window user counts low, "
        "which is why 20 coexisting users stay trackable (paper V.C)."
    )


if __name__ == "__main__":
    main()
