#!/usr/bin/env python
"""Traffic-reshaping defenses vs the flux attack (paper future work).

The paper's conclusion proposes "reshaping the network traffics to
prevent malicious detection" as the countermeasure direction. This
demo quantifies two defenses:

* uniform padding — every node pads toward the max flux level;
* dummy sinks — the network runs decoy collection trees.

Run:  python examples/countermeasures_demo.py
"""

import numpy as np

from repro import build_network
from repro.countermeasures import defense_tradeoff


def main() -> None:
    network = build_network(rng=3)
    print("Measuring attack error vs defense strength (2 real users)...\n")
    points = defense_tradeoff(
        network,
        user_count=2,
        padding_levels=(0.0, 0.3, 0.6, 0.9),
        dummy_counts=(1, 2, 4),
        repetitions=3,
        rng=17,
    )
    baseline = next(
        p for p in points if p.defense == "padding" and p.parameter == 0.0
    )
    print(f"{'defense':<12} {'param':>6} {'attack err':>10} {'overhead':>9}")
    for p in points:
        print(
            f"{p.defense:<12} {p.parameter:>6.2f} {p.attack_error:>10.2f} "
            f"{p.overhead:>8.0%}"
        )
    print(
        f"\nUndefended attack error: {baseline.attack_error:.2f}. Defenses "
        "trade traffic overhead for attacker confusion — the flux "
        "fingerprint only disappears when padding flattens (or decoys "
        "drown) the traffic pattern."
    )


if __name__ == "__main__":
    main()
