#!/usr/bin/env python
"""Serve the attack to many clients at once — micro-batched.

The other examples run one attack per process. An adversary with a
sniffer deployment amortizes it: one service holds the flux model, the
fingerprint map, and the engine, and many logical clients ask it
"where is this user?" concurrently. This demo stands the service up
in-process, drives it with concurrent localize clients plus a
streaming tracking session, and shows the operational surface: the
batch-size histogram (how well micro-batching amortized the fused
kernel calls), typed error replies (a deadline-expired request and an
unknown-session request — answered, never dropped), and the
drain-and-checkpoint shutdown that a restarted service resumes from.

Run:  python examples/serving_attack.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import build_network, sample_sniffers_percentage
from repro.geometry import RectangularField
from repro.serve import (
    LocalizationService,
    LocalizeRequest,
    TrackStepRequest,
)
from repro.stream import SyntheticLiveSource
from repro.traffic import MeasurementModel, simulate_flux

CLIENTS = 6
REQUESTS = 8


def main() -> None:
    gen = np.random.default_rng(11)
    network = build_network(
        field=RectangularField(15.0, 15.0), node_count=225, rng=gen
    )
    sniffers = sample_sniffers_percentage(network, 20.0, rng=gen)
    measure = MeasurementModel(network, sniffers, smooth=True, rng=gen)

    # One service per deployment: the map build below is the expensive
    # shared asset every request reuses (map-seeded candidate pools).
    service = LocalizationService(
        network.field,
        network.positions[sniffers],
        fingerprint_map=None,
        map_resolution=2.0,
        max_batch=16,
        max_wait_s=0.002,
        queue_capacity=256,
    )

    # --- workload: each client brings its own observed windows ---------
    workload = []
    for c in range(CLIENTS):
        jobs = []
        for r in range(REQUESTS):
            truth = network.field.sample_uniform(1, gen)
            flux = simulate_flux(
                network, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
            )
            request = LocalizeRequest(
                request_id=f"c{c}-r{r}",
                client_id=f"client-{c}",
                observation=measure.observe(flux),
                candidate_count=64,
                seed=int(gen.integers(2**31)),
            )
            jobs.append((request, truth))
        workload.append(jobs)

    live = SyntheticLiveSource(
        network, sniffers, user_count=2, rounds=REQUESTS, rng=gen
    )
    windows = list(live)
    service.open_session("patrol", user_count=2, rng=7)

    errors = []

    def localize_client(jobs):
        for request, truth in jobs:
            reply = service.submit(request).result()
            errors.append(reply.result.errors_to(truth).mean())

    def track_client():
        for r, obs in enumerate(windows):
            service.submit(
                TrackStepRequest(
                    request_id=f"patrol-r{r}",
                    client_id="tracker",
                    session_id="patrol",
                    observation=obs,
                )
            ).result()

    threads = [
        threading.Thread(target=localize_client, args=(jobs,))
        for jobs in workload
    ] + [threading.Thread(target=track_client)]
    with service:
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # --- typed errors: failure is a reply, not a dropped future ----
        expired = service.submit(
            LocalizeRequest(
                request_id="too-late",
                client_id="impatient",
                observation=workload[0][0][0].observation,
                candidate_count=64,
                deadline_s=0.0,
            )
        ).result()
        lost = service.submit(
            TrackStepRequest(
                request_id="lost",
                client_id="tracker",
                session_id="no-such-session",
                observation=windows[0],
            )
        ).result()
        print(f"deadline_s=0 request  -> ok={expired.ok} code={expired.code}")
        print(f"unknown session       -> ok={lost.ok} code={lost.code}")

        # --- drain-and-checkpoint shutdown ------------------------------
        workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
        summary = service.stop(checkpoint_dir=workdir)
    print(f"checkpointed on shutdown: {summary['checkpoints']}")

    print(
        f"\n{CLIENTS} clients x {REQUESTS} requests: mean localization "
        f"error {np.mean(errors):.2f}"
    )
    snapshot = service.metrics.snapshot()
    print(f"batch size histogram: {snapshot['batch_size_histogram']}")
    print(f"p50/p95/p99 latency:  {snapshot['latency_p50_s'] * 1e3:.1f} / "
          f"{snapshot['latency_p95_s'] * 1e3:.1f} / "
          f"{snapshot['latency_p99_s'] * 1e3:.1f} ms")

    # --- a restarted service resumes the tracking session ---------------
    revived = LocalizationService(
        network.field,
        network.positions[sniffers],
        fingerprint_map=service.fingerprint_map,
        max_batch=16,
    )
    session = revived.resume_session(
        summary["checkpoints"]["patrol"], truth=live.truth_at
    )
    print(
        f"\nresumed session {session.session_id!r} at window "
        f"{session.windows_consumed}; estimates:"
    )
    for user, (x, y) in enumerate(session.estimates()):
        print(f"  user {user}: ({x:6.2f}, {y:6.2f})")


if __name__ == "__main__":
    main()
