#!/usr/bin/env python
"""Multi-user instant localization + the briefing alternative (Figs. 4-5).

Three users collect simultaneously. The script contrasts the two
attack regimes the paper develops:

* full-information *briefing* (Section III.C): sniff every node,
  recursively peel traffic peaks;
* sparse *NLS fingerprinting* (Section IV.A): sniff only 10% of the
  nodes and fit all user positions jointly.

Run:  python examples/localization_attack.py
"""

import numpy as np

from repro import (
    MeasurementModel,
    NLSLocalizer,
    brief_flux_map,
    build_network,
    sample_sniffers_percentage,
    simulate_flux,
)
from repro.fingerprint.nls import forward_select_active
from repro.smc.association import assignment_errors


def main() -> None:
    rng = np.random.default_rng(7)
    network = build_network(rng=rng)
    user_count = 3

    truth = network.field.sample_uniform(user_count, rng)
    stretches = rng.uniform(1.0, 3.0, user_count)
    print("True user positions:")
    for i, (pos, s) in enumerate(zip(truth, stretches)):
        print(f"  user {i}: ({pos[0]:5.2f}, {pos[1]:5.2f})  stretch {s:.2f}")
    flux = simulate_flux(network, list(truth), list(stretches), rng=rng)

    # ------------------------------------------------------------------
    print("\n[1] Briefing with the FULL flux map (sniff all 900 nodes):")
    briefing = brief_flux_map(network, flux, max_users=user_count)
    errors, _ = assignment_errors(briefing.positions, truth)
    for i, (pos, err) in enumerate(zip(briefing.positions, errors)):
        print(
            f"  detected ({pos[0]:5.2f}, {pos[1]:5.2f})  error {err:.2f}  "
            f"theta {briefing.users[i].theta:.2f}"
        )
    print(f"  mean error: {errors.mean():.2f}")

    # ------------------------------------------------------------------
    print("\n[2] NLS fingerprinting with SPARSE sampling (10% of nodes):")
    sniffers = sample_sniffers_percentage(network, 10.0, rng=rng)
    observation = MeasurementModel(network, sniffers, smooth=True, rng=rng).observe(
        flux
    )
    localizer = NLSLocalizer(network.field, network.positions[sniffers])
    result = localizer.localize(
        observation, user_count=user_count, candidate_count=4000, rng=rng
    )
    estimates = result.position_estimates()
    errors = result.errors_to(truth)
    for i, (pos, err) in enumerate(zip(estimates, errors)):
        print(f"  estimated ({pos[0]:5.2f}, {pos[1]:5.2f})  error {err:.2f}")
    print(f"  mean error: {errors.mean():.2f}")
    print(
        f"\nSparse sampling used {sniffers.size}/{network.node_count} nodes "
        "yet recovered all users — the paper's headline result."
    )

    # ------------------------------------------------------------------
    print("\n[3] Conservative K: fitting 5 slots for 3 users...")
    result5 = localizer.localize(
        observation, user_count=5, candidate_count=3000, rng=rng
    )
    kernels = localizer.model.geometry_kernels(result5.best.positions)
    mask, _, _ = forward_select_active(
        localizer.objective_for(observation), kernels
    )
    print(
        f"  slots surviving the s/r -> 0 activity test: {int(mask.sum())} "
        f"(paper: surplus users fit s/r -> 0)"
    )


if __name__ == "__main__":
    main()
