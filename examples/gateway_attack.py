#!/usr/bin/env python
"""The flux attack over the wire: a gateway, traced end to end.

Spins up the full serving stack behind a :class:`repro.gateway.
GatewayServer` — asyncio TCP front door, micro-batched localization
service, AIMD governor — then plays the attacker from the *client*
side of real sockets: concurrent localizations and a tracked session,
all speaking the newline-delimited JSON protocol. Finishes with the
per-stage latency decomposition (gateway_in → admission → fuse →
solve → reply → gateway_out) read back through a ``trace_dump``
frame, so you can see exactly where each millisecond of a request
went.

Run:  PYTHONPATH=src python examples/gateway_attack.py
"""

import asyncio

import numpy as np

from repro import build_network, sample_sniffers_percentage, simulate_flux
from repro.fpmap import build_fingerprint_map
from repro.gateway import GatewayClient, GatewayGovernor, GatewayServer
from repro.geometry import RectangularField
from repro.serve import LocalizationService
from repro.stream import SyntheticLiveSource
from repro.traffic import MeasurementModel

CLIENTS = 4
REQUESTS_PER_CLIENT = 4
TRACK_ROUNDS = 5

STAGE_ORDER = ("gateway_in", "admission", "fuse", "solve", "reply",
               "gateway_out")


async def attacker(port, name, observations):
    """One attacking client: pipelined localizations on one socket."""
    async with GatewayClient("127.0.0.1", port, name, timeout_s=60.0) as c:
        replies = await asyncio.gather(*(
            c.localize(obs, id=f"{name}-r{r}", candidate_count=48,
                       seed=hash(name) % 10_000 + r)
            for r, obs in enumerate(observations)
        ))
    return replies


async def tracker(port, windows):
    """A tracked session over the wire: open, then step every window."""
    async with GatewayClient("127.0.0.1", port, "tracker",
                             timeout_s=60.0) as c:
        await c.open_session("patrol", user_count=2, seed=11)
        estimates = None
        for r, obs in enumerate(windows):
            reply = await c.track_step("patrol", obs, id=f"w{r}")
            assert reply["ok"], reply
            estimates = reply["estimates"]
        dump = await c.trace_dump(limit=5)
    return estimates, dump


async def drive(port, work, windows):
    attacks = asyncio.gather(*(
        attacker(port, f"attacker-{c}", observations)
        for c, observations in enumerate(work)
    ))
    (estimates, dump), replies = await asyncio.gather(
        tracker(port, windows), attacks
    )
    return replies, estimates, dump


def main() -> None:
    print("Building the deployment (100 nodes, 20% sniffers)...")
    net = build_network(field=RectangularField(10, 10), node_count=100,
                        radius=2.0, rng=5)
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)

    gen = np.random.default_rng(7)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    work = []
    for _ in range(CLIENTS):
        observations = []
        for _ in range(REQUESTS_PER_CLIENT):
            truth = net.field.sample_uniform(1, gen)
            flux = simulate_flux(net, list(truth),
                                 [float(gen.uniform(1.0, 3.0))], rng=gen)
            observations.append(measure.observe(flux))
        work.append(observations)
    windows = list(SyntheticLiveSource(net, sniffers, user_count=2,
                                       rounds=TRACK_ROUNDS, rng=3))

    service = LocalizationService(
        net.field, net.positions[sniffers], fingerprint_map=fmap,
        max_batch=8, max_wait_s=0.002,
    )
    with service:
        governor = GatewayGovernor(service, slo_p95_s=0.050,
                                   interval_s=0.05)
        with GatewayServer(service, governor=governor) as gateway:
            print(f"Gateway listening on 127.0.0.1:{gateway.port} "
                  f"(ephemeral bind)\n")
            replies, estimates, dump = asyncio.run(
                drive(gateway.port, work, windows)
            )

            flat = [r for batch in replies for r in batch]
            ok = sum(1 for r in flat if r.get("ok"))
            print(f"Localizations over the wire: {ok}/{len(flat)} ok "
                  f"from {CLIENTS} concurrent connections")
            print(f"Tracked session: {TRACK_ROUNDS} windows, final "
                  f"estimates {np.round(np.asarray(estimates), 2).tolist()}")

            snap = gateway.snapshot()
            print(f"\nGateway: {snap['connections_opened']} connections, "
                  f"{snap['frames_received']} frames in / "
                  f"{snap['frames_sent']} out, "
                  f"{snap['replies_dropped']} replies dropped, "
                  f"{snap['protocol_errors']} protocol errors")
            print(f"Governor: {snap['governor']['adjustments_total']} "
                  f"adjustments over {snap['governor']['ticks']} ticks "
                  f"(SLO p95 <= 50 ms)")

            print("\nPer-stage latency decomposition (p95, from "
                  "trace_dump):")
            stages = dump["stages"]
            for stage in STAGE_ORDER:
                if stage not in stages:
                    continue
                info = stages[stage]
                print(f"  {stage:<12} {1e3 * info['p95_s']:>8.2f} ms "
                      f"({info['count']} samples)")
            sample = dump["traces"][-1]
            total_ms = 1e3 * sample["total_s"]
            print(f"\nOne traced request ({sample['span_id']}): "
                  f"{total_ms:.2f} ms total")
            for stage, seconds in sorted(sample["stages"].items(),
                                         key=lambda kv: -kv[1]):
                print(f"  {stage:<12} {1e3 * seconds:>8.2f} ms "
                      f"({100 * seconds / sample['total_s']:.0f}%)")
    print("\nEvery reply above crossed a real TCP socket — the same "
          "frames, spans, and knobs the CLI's `repro gateway` serves.")


if __name__ == "__main__":
    main()
