#!/usr/bin/env python
"""Run the tracker as a streaming service — kill it, resume it.

The batch examples precompute a whole observation list; real attacks
run online. This demo records an observation log, then drives the
streaming service over it with a checkpoint every 4 windows. Midway we
simulate a process kill, restart from the checkpoint, and show that the
resumed run lands on *bitwise identical* estimates — plus the metrics a
long-running service exports (window counts, skip reasons, p50/p95
step latency).

Run:  python examples/streaming_attack.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    SequentialMonteCarloTracker,
    TrackerConfig,
    build_network,
    sample_sniffers_percentage,
)
from repro.stream import (
    ReplaySource,
    SyntheticLiveSource,
    TrackingSession,
    resume_or_create,
    run_stream,
)
from repro.traffic.measurement import FluxObservation
from repro.util.persistence import save_observations


def main() -> None:
    network = build_network(rng=np.random.default_rng(42))
    sniffers = sample_sniffers_percentage(network, 10.0, rng=1)
    rounds = 12

    # --- record an observation log (the adversary's sniffer archive) ----
    live = SyntheticLiveSource(
        network, sniffers, user_count=2, rounds=rounds, rng=2
    )
    observations = list(live)
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    log = save_observations(observations, workdir / "observations.npz")
    print(f"recorded {len(observations)} windows to {log}")

    # pollute the log the way a real feed would be polluted: a stale
    # out-of-order window and a wrong-arity reading. The session must
    # skip both and keep tracking.
    polluted = list(observations)
    polluted.insert(5, observations[1])  # out of order
    polluted.insert(8, FluxObservation(
        time=6.5, sniffers=np.arange(3), values=np.ones(3)
    ))

    checkpoint = workdir / "run.ckpt.npz"

    def make_session():
        tracker = SequentialMonteCarloTracker(
            network.field,
            network.positions[sniffers],
            user_count=2,
            config=TrackerConfig(prediction_count=500, keep_count=10),
            rng=7,
        )
        return TrackingSession("demo", tracker, truth=live.truth_at)

    # --- first run: killed after 6 windows ------------------------------
    session = resume_or_create(checkpoint, make_session)
    run_stream(
        ReplaySource(polluted), session,
        checkpoint_path=checkpoint, checkpoint_every=4, max_windows=6,
    )
    print(
        f"\n-- simulated kill after {session.windows_consumed} windows "
        f"(checkpoint at {checkpoint.name}) --"
    )

    # --- second run: a fresh process resumes from the checkpoint --------
    resumed = resume_or_create(checkpoint, make_session, truth=live.truth_at)
    print(f"resumed at window {resumed.windows_consumed}")
    run_stream(ReplaySource(polluted), resumed, checkpoint_path=checkpoint)

    # --- the uninterrupted reference ------------------------------------
    reference = make_session()
    run_stream(ReplaySource(polluted), reference)

    identical = np.array_equal(resumed.estimates(), reference.estimates())
    print(f"\nkill/resume estimates identical to uninterrupted run: {identical}")
    print("final estimates:")
    for user, (x, y) in enumerate(resumed.estimates()):
        print(f"  user {user}: ({x:6.2f}, {y:6.2f})")

    print("\nservice metrics:")
    print(resumed.metrics.to_json())
    skips = dict(resumed.metrics.windows_skipped)
    print(
        f"\nThe polluted windows were absorbed, not fatal: {skips} — the "
        "paper's asynchronous updating (§IV.D) treats a missing window "
        "as a silent user, so the stream layer can shed garbage freely."
    )


if __name__ == "__main__":
    main()
