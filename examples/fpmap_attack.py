#!/usr/bin/env python
"""The fingerprinting attack with an offline survey: build once, match fast.

Classic fingerprinting splits the attack into an offline survey and an
online match. Here the survey is *free* for the adversary — the flux
model is analytic, so the per-cell signatures are computed, not
war-walked. This demo:

1. builds the fingerprint map of a deployment (grid of flux-kernel
   signatures at the sniffed nodes),
2. localizes two users by map seeding at a quarter of the usual
   candidate budget and compares against the pure random search,
3. saves and reloads the map, showing the stale-deployment guard, and
4. runs the SMC tracker with map-based recovery of a degenerate user.

Run:  python examples/fpmap_attack.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    MeasurementModel,
    NLSLocalizer,
    RectangularField,
    SequentialMonteCarloTracker,
    TrackerConfig,
    build_fingerprint_map,
    build_network,
    sample_sniffers_percentage,
    simulate_flux,
)
from repro.errors import ConfigurationError
from repro.fpmap import FingerprintMap


def main() -> None:
    network = build_network(
        field=RectangularField(15, 15), node_count=225, radius=2.0, rng=1234
    )
    sniffers = sample_sniffers_percentage(network, 20, rng=1)

    # --- offline survey: one map per deployment -------------------------
    started = time.perf_counter()
    fmap = build_fingerprint_map(
        network.field,
        network.positions[sniffers],
        resolution=0.5,
        sniffer_ids=sniffers,
    )
    built_in = time.perf_counter() - started
    print(
        f"built {fmap.cell_count}-cell map for {fmap.sniffer_count} sniffers "
        f"in {built_in * 1000:.0f} ms (deployment {fmap.deployment[:12]})"
    )

    # --- online: seeded NLS vs pure random sampling ---------------------
    gen = np.random.default_rng(7)
    truth = network.field.sample_uniform(2, gen)
    flux = simulate_flux(network, list(truth), [2.5, 2.0], rng=gen)
    observation = MeasurementModel(
        network, sniffers, smooth=True, rng=gen
    ).observe(flux)
    localizer = NLSLocalizer(network.field, network.positions[sniffers])

    started = time.perf_counter()
    unseeded = localizer.localize(
        observation, user_count=2, candidate_count=2000, restarts=2, rng=11
    )
    t_unseeded = time.perf_counter() - started
    started = time.perf_counter()
    seeded = localizer.localize(
        observation, user_count=2, candidate_count=500, restarts=2, rng=11,
        fingerprint_map=fmap,
    )
    t_seeded = time.perf_counter() - started
    print(
        f"unseeded (2000 candidates): mean error "
        f"{unseeded.errors_to(truth).mean():.2f} in {t_unseeded:.2f} s"
    )
    print(
        f"map-seeded (500 candidates): mean error "
        f"{seeded.errors_to(truth).mean():.2f} in {t_seeded:.2f} s "
        f"(cache hit rate {fmap.cache.hit_rate:.0%})"
    )

    # --- persistence + the stale-deployment guard -----------------------
    workdir = Path(tempfile.mkdtemp(prefix="repro-fpmap-"))
    path = fmap.save(workdir / "deployment.npz")
    reloaded = FingerprintMap.load(path)
    print(f"round-tripped map via {path} ({reloaded.cell_count} cells)")
    other_sniffers = sample_sniffers_percentage(network, 20, rng=999)
    try:
        reloaded.validate_against(
            network.field, network.positions[other_sniffers], 1.0
        )
    except ConfigurationError as exc:
        print(f"stale sniffer set correctly refused: {str(exc)[:68]}...")

    # --- SMC recovery: a lost user is reseeded from the map -------------
    tracker = SequentialMonteCarloTracker(
        network.field,
        network.positions[sniffers],
        user_count=2,  # one phantom user never emits flux
        config=TrackerConfig(
            prediction_count=300, keep_count=10, max_speed=1.5,
            reseed_after_misses=3,
        ),
        rng=5,
        fingerprint_map=reloaded,
    )
    walker = np.array([4.0, 4.0])
    reseeds = 0
    for t in range(1, 11):
        walker = np.clip(walker + gen.uniform(-1, 1, 2), 0.5, 14.5)
        flux = simulate_flux(network, [walker], [2.0], rng=gen)
        obs = MeasurementModel(
            network, sniffers, smooth=False, rng=gen
        ).observe(flux, time=float(t))
        step = tracker.step(obs)
        reseeds += int(step.reseeded.sum())
    best = np.linalg.norm(tracker.estimates() - walker[None, :], axis=1).min()
    print(
        f"tracked 10 windows; {reseeds} map reseed(s) of the phantom user, "
        f"final error to the real user {best:.2f}"
    )


if __name__ == "__main__":
    main()
